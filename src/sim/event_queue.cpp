#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace because::sim {

namespace {

constexpr std::size_t kMinBuckets = 32;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
constexpr Duration kInitialWidth = milliseconds(100);
constexpr Duration kMaxWidth = hours(1);
// Width adaptation: every kWidthCheckPops pops, if the mean scan+skip work
// per pop exceeded kWorkPerPopBudget, re-derive the width from the sim-time
// those pops spanned and rebucket (with 2x hysteresis so a marginal estimate
// doesn't thrash). The budget is deliberately loose: a rebucket relinks
// every pending event, so on campaign workloads (tens of thousands pending)
// tolerating ~30 scanned nodes per pop beats resizing at ~8 — measured on
// bench_sim, retunes drop ~3x and end-to-end throughput rises ~15%.
constexpr std::uint64_t kWidthCheckPops = 128;
constexpr std::uint64_t kWorkPerPopBudget = 32;

}  // namespace

EventQueue::EventQueue(EngineBackend backend) : backend_(backend) {
  if (backend_ == EngineBackend::kCalendar) {
    heads_.assign(kMinBuckets, kNil);
    mask_ = kMinBuckets - 1;
    width_ = kInitialWidth;
    cursor_ = 0;
    cursor_top_ = width_;
  }
}

EventQueue::~EventQueue() {
  if (!obs::enabled()) return;
  // The per-kind counters in the obs catalogue mirror EventKind order, so the
  // flush is a straight loop from the first kind counter.
  static_assert(static_cast<std::size_t>(obs::Counter::kSimEventsCollectorRecord) -
                        static_cast<std::size_t>(obs::Counter::kSimEventsClosure) + 1 ==
                    kEventKindCount,
                "obs counter catalogue out of sync with EventKind");
  const auto base =
      static_cast<obs::CounterId>(obs::Counter::kSimEventsClosure);
  for (std::size_t k = 0; k < kEventKindCount; ++k)
    obs::add(base + static_cast<obs::CounterId>(k), executed_by_kind_[k]);
  obs::add(obs::Counter::kSimSchedules, scheduled_);
  obs::add(obs::Counter::kSimPastClamped, past_clamped_);
  obs::add(obs::Counter::kSimCalScanSteps, cal_scan_steps_);
  obs::add(obs::Counter::kSimCalWindowSkips, cal_window_skips_);
  obs::add(obs::Counter::kSimCalResizes, cal_resizes_);
  for (std::size_t b = 0; b < depth_hist_.size(); ++b)
    obs::observe_bucket(obs::Histo::kQueueDepth, b, depth_hist_[b]);
}

Time EventQueue::clamp_past(Time when) {
  if (when >= now_) return when;
  // Past clamps are expected steady-state behaviour (zero-delay timers racing
  // the clock), so only the first occurrence logs; past_clamped() carries the
  // full count for diagnostics.
  if (past_clamped_++ == 0) {
    util::log_warn() << "EventQueue: schedule at t=" << when << " is "
                     << (now_ - when) << "ms in the past; clamped to now="
                     << now_ << " (later clamps are counted, not logged)";
  }
  return now_;
}

void EventQueue::schedule_at(Time when, Action action) {
  when = clamp_past(when);
  ++scheduled_;
  if (backend_ == EngineBackend::kFunctionHeap) {
    heap_push(when, EventKind::kClosure, std::move(action));
    return;
  }
  if (round_active_) {
    const std::uint32_t call = call_index_++;
    if (when >= horizon_) {
      CapturedEvent cap;
      cap.when = when;
      cap.kind = EventKind::kClosure;
      cap.closure = std::move(action);
      cap.spawner_when = cur_when_;
      cap.spawner_seq = cur_seq_;
      cap.call_index = call;
      captures_.push_back(std::move(cap));
      return;
    }
    const std::uint64_t seq =
        kProvisionalBit | static_cast<std::uint64_t>(provisional_arena_.size());
    provisional_arena_.push_back({cur_when_, cur_seq_, call});
    Event event;
    event.when = when;
    event.seq = seq;
    event.fn = &EventQueue::run_closure_slot;
    event.a = intern_closure(std::move(action));
    event.kind = EventKind::kClosure;
    cal_insert(event);
    return;
  }
  Event event;
  event.when = when;
  event.seq = take_seq();
  event.fn = &EventQueue::run_closure_slot;
  event.a = intern_closure(std::move(action));
  event.kind = EventKind::kClosure;
  cal_insert(event);
}

void EventQueue::schedule_in(Duration delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void EventQueue::schedule_event_at(Time when, EventKind kind, EventFn fn,
                                   void* ctx, std::uint64_t a,
                                   std::uint64_t b) {
  when = clamp_past(when);
  ++scheduled_;
  if (backend_ == EngineBackend::kFunctionHeap) {
    // The reference engine runs everything as a closure, like the original
    // std::function heap did.
    heap_push(when, kind, [this, fn, ctx, a, b] { fn(*this, ctx, a, b); });
    return;
  }
  if (round_active_) {
    const std::uint32_t call = call_index_++;
    if (when >= horizon_) {
      captures_.push_back(CapturedEvent{when, kind, fn, ctx, a, b, Action{},
                                        cur_when_, cur_seq_, call});
      return;
    }
    const std::uint64_t seq =
        kProvisionalBit | static_cast<std::uint64_t>(provisional_arena_.size());
    provisional_arena_.push_back({cur_when_, cur_seq_, call});
    cal_insert(Event{when, seq, fn, ctx, a, b, kind});
    return;
  }
  cal_insert(Event{when, take_seq(), fn, ctx, a, b, kind});
}

void EventQueue::schedule_event_in(Duration delay, EventKind kind, EventFn fn,
                                   void* ctx, std::uint64_t a,
                                   std::uint64_t b) {
  schedule_event_at(now_ + delay, kind, fn, ctx, a, b);
}

std::uint32_t EventQueue::intern_closure(Action action) {
  if (!free_closures_.empty()) {
    const std::uint32_t slot = free_closures_.back();
    free_closures_.pop_back();
    BECAUSE_ASSERT(closures_[slot] == nullptr,
                   "free-listed closure slot " << slot << " still occupied");
    closures_[slot] = std::move(action);
    return slot;
  }
  closures_.push_back(std::move(action));
  return static_cast<std::uint32_t>(closures_.size() - 1);
}

void EventQueue::run_closure_slot(EventQueue& queue, void*, std::uint64_t a,
                                  std::uint64_t) {
  const auto slot = static_cast<std::uint32_t>(a);
  BECAUSE_ASSERT(slot < queue.closures_.size() &&
                     queue.closures_[slot] != nullptr,
                 "closure slot " << slot << " out of range or already freed ("
                                 << queue.closures_.size() << " slots)");
  // Move the action out and free the slot first so re-entrant scheduling may
  // reuse (or grow) the slab safely.
  Action action = std::move(queue.closures_[slot]);
  queue.closures_[slot] = nullptr;
  queue.free_closures_.push_back(slot);
  action();
}

void EventQueue::note_pop(Time when, std::uint64_t seq) {
  BECAUSE_ASSERT(when >= now_, "popped event at t=" << when
                                   << " precedes the clock now=" << now_
                                   << " (seq " << seq << ")");
  BECAUSE_ASSERT(!popped_any_ || when > last_pop_when_ ||
                     (when == last_pop_when_ && seq > last_pop_seq_),
                 "pop order regressed: (" << when << ", " << seq
                                          << ") after (" << last_pop_when_
                                          << ", " << last_pop_seq_ << ")");
  last_pop_when_ = when;
  last_pop_seq_ = seq;
  popped_any_ = true;
  // Queue-depth sample per pop; size_ has already been decremented by the
  // backend, so this is the depth the *next* pop will scan. One predictable
  // branch when collection is off.
  if (obs::enabled())
    depth_hist_[obs::histogram_bucket(size_)] += 1;
}

void EventQueue::dispatch(const Event& event) {
  note_pop(event.when, event.seq);
  now_ = event.when;
  cur_when_ = event.when;
  cur_seq_ = event.seq;
  call_index_ = 0;
  event.fn(*this, event.ctx, event.a, event.b);
  ++executed_;
  ++executed_by_kind_[static_cast<std::size_t>(event.kind)];
}

std::uint64_t EventQueue::run() {
  std::uint64_t count = 0;
  if (backend_ == EngineBackend::kFunctionHeap) {
    while (!heap_.empty()) {
      HeapEntry entry = heap_pop();
      now_ = entry.when;
      cur_when_ = entry.when;
      cur_seq_ = entry.seq;
      call_index_ = 0;
      entry.action();
      ++count;
      ++executed_;
      ++executed_by_kind_[static_cast<std::size_t>(entry.kind)];
    }
    return count;
  }
  Event event;
  while (cal_pop(event)) {
    dispatch(event);
    ++count;
  }
  return count;
}

std::uint64_t EventQueue::run_until(Time deadline) {
  std::uint64_t count = 0;
  if (backend_ == EngineBackend::kFunctionHeap) {
    while (!heap_.empty() && heap_.front().when <= deadline) {
      HeapEntry entry = heap_pop();
      now_ = entry.when;
      cur_when_ = entry.when;
      cur_seq_ = entry.seq;
      call_index_ = 0;
      entry.action();
      ++count;
      ++executed_;
      ++executed_by_kind_[static_cast<std::size_t>(entry.kind)];
    }
  } else {
    Event event;
    while (cal_pop(event)) {
      if (event.when > deadline) {
        cal_insert(event);  // keeps its original seq: ordering is unchanged
        break;
      }
      dispatch(event);
      ++count;
    }
  }
  if (now_ < deadline) now_ = deadline;
  if (backend_ == EngineBackend::kCalendar) {
    // The pop that overshot the deadline may have jumped the cursor to the
    // deferred event's far-future window (full-cycle fallback). Rewind the
    // scan to now_'s window, exactly as cal_resize does, so events scheduled
    // after this call at earlier times are popped first. Safe because every
    // pending event is now strictly after deadline == now_.
    cursor_top_ = (now_ / width_) * width_ + width_;
    cursor_ = bucket_index(now_);
  }
  return count;
}

void EventQueue::heap_push(Time when, EventKind kind, Action action) {
  heap_.push_back(HeapEntry{when, take_seq(), kind, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++size_;
}

EventQueue::HeapEntry EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  HeapEntry entry = std::move(heap_.back());
  heap_.pop_back();
  --size_;
  note_pop(entry.when, entry.seq);
  return entry;
}

// ---------------------------------------------------------------------------
// Calendar backend. Buckets partition time into windows of `width_` ms; an
// event lands in bucket (when / width) % nbuckets. The cursor drains one
// window at a time, so a bucket may hold events of far-future windows — the
// `when < cursor_top_` guard skips those until their cycle comes around.
// Popping always yields the globally minimal (when, seq): same-time events
// share a bucket, so ties resolve by seq within one scan.
// ---------------------------------------------------------------------------

void EventQueue::cal_insert(const Event& event) {
  std::uint32_t slot;
  if (!free_nodes_.empty()) {
    slot = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  std::uint32_t& head = heads_[bucket_index(event.when)];
  nodes_[slot].event = event;
  nodes_[slot].next = head;
  head = slot;
  ++size_;
  if (size_ > heads_.size() * 2 && heads_.size() < kMaxBuckets)
    cal_resize(heads_.size() * 2, width_);
}

bool EventQueue::cal_pop(Event& out) {
  if (size_ == 0) return false;
  // Window invariant: cursor_top_ sits on a width_ boundary and cursor_ is
  // the bucket of the window ending at cursor_top_. Every cursor move below
  // (and in cal_resize / run_until) preserves this.
  BECAUSE_DCHECK(
      width_ > 0 && cursor_top_ % width_ == 0 &&
          cursor_ == (static_cast<std::size_t>(cursor_top_ / width_ - 1) &
                      mask_),
      "calendar cursor/window desync: cursor=" << cursor_ << " cursor_top="
                                               << cursor_top_ << " width="
                                               << width_);
  const std::uint64_t work_before = cal_scan_steps_ + cal_window_skips_;
  const std::size_t nbuckets = heads_.size();
  for (std::size_t step = 0; step < nbuckets; ++step) {
    // Find the minimal (when, seq) among this window's due entries, keeping
    // the predecessor link so the winner can be unlinked. List order within
    // a bucket is irrelevant: the scan is a full min-reduction.
    std::uint32_t best = kNil, best_prev = kNil;
    std::uint32_t prev = kNil;
    for (std::uint32_t i = heads_[cursor_]; i != kNil; i = nodes_[i].next) {
      ++cal_scan_steps_;
      if (nodes_[i].event.when < cursor_top_ &&
          (best == kNil || earlier(nodes_[i].event, nodes_[best].event))) {
        best = i;
        best_prev = prev;
      }
      prev = i;
    }
    if (best != kNil) {
      out = nodes_[best].event;
      if (best_prev == kNil) heads_[cursor_] = nodes_[best].next;
      else nodes_[best_prev].next = nodes_[best].next;
      free_nodes_.push_back(best);
      --size_;
      if (heads_.size() > kMinBuckets && size_ < heads_.size() / 8)
        cal_resize(heads_.size() / 2, width_);
      else
        cal_retune(work_before);
      return true;
    }
    cursor_ = (cursor_ + 1) & mask_;
    cursor_top_ += width_;
    ++cal_window_skips_;
  }

  // A full cycle found nothing due: the next event is far in the future
  // (sparse phase, e.g. a beacon Break). Jump straight to the global minimum.
  std::uint32_t best = kNil, best_prev = kNil;
  std::size_t best_bucket = 0;
  for (std::size_t bkt = 0; bkt < nbuckets; ++bkt) {
    std::uint32_t prev = kNil;
    for (std::uint32_t i = heads_[bkt]; i != kNil; i = nodes_[i].next) {
      ++cal_scan_steps_;
      if (best == kNil || earlier(nodes_[i].event, nodes_[best].event)) {
        best = i;
        best_prev = prev;
        best_bucket = bkt;
      }
      prev = i;
    }
  }
  BECAUSE_ASSERT(best != kNil, "calendar lost events: size=" << size_
                                   << " but a full sweep found none");
  out = nodes_[best].event;
  if (best_prev == kNil) heads_[best_bucket] = nodes_[best].next;
  else nodes_[best_prev].next = nodes_[best].next;
  free_nodes_.push_back(best);
  --size_;
  cursor_top_ = (out.when / width_) * width_ + width_;
  cursor_ = bucket_index(out.when);
  if (heads_.size() > kMinBuckets && size_ < heads_.size() / 8)
    cal_resize(heads_.size() / 2, width_);
  else
    cal_retune(work_before);
  return true;
}

void EventQueue::cal_resize(std::size_t nbuckets, Duration width) {
  ++cal_resizes_;
  // Relink in one pass: swap the old bucket heads into a scratch vector
  // whose capacity persists across resizes, then walk each chain moving
  // nodes into the new buckets. The Event payloads stay put in the slab, and
  // steady-state resizes never allocate. Chain order within a bucket is
  // irrelevant (pops are a full min-reduction), so relinking by prepend is
  // fine.
  std::swap(heads_, resize_scratch_);
  heads_.assign(nbuckets, kNil);
  mask_ = nbuckets - 1;
  width_ = width;
  // Every pending event is at or after now_ (pops return the global min and
  // schedules clamp), so restart the scan at now_'s window.
  cursor_top_ = (now_ / width_) * width_ + width_;
  cursor_ = bucket_index(now_);
  std::size_t relinked = 0;
  for (const std::uint32_t old_head : resize_scratch_) {
    for (std::uint32_t i = old_head; i != kNil;) {
      const std::uint32_t next = nodes_[i].next;
      std::uint32_t& head = heads_[bucket_index(nodes_[i].event.when)];
      nodes_[i].next = head;
      head = i;
      ++relinked;
      i = next;
    }
  }
  BECAUSE_ASSERT(relinked == size_,
                 "calendar chains hold " << relinked << " events but size="
                                         << size_);
  resize_scratch_.clear();
  pops_since_width_ = 0;
  work_since_width_ = 0;
  width_epoch_ = now_;
}

void EventQueue::cal_retune(std::uint64_t work_before) {
  // Called after every pop that did not resize. The bucket width that makes
  // pops cheap is the inter-event spacing at the *front* of the queue, and
  // the stream of executed events measures exactly that for free: campaign
  // workloads are a skewed mixture (sub-ms BGP delivery cascades pending next
  // to RFD reuse timers an hour out), so any estimate over the pending set
  // lands between the modes and serves neither. Width only moves when the
  // measured work rate says the current bucketing is actually hurting, with
  // 2x hysteresis; the same rule widens after a burst (full-cycle fallback
  // scans dominate) and narrows when a new burst piles into one bucket.
  work_since_width_ += (cal_scan_steps_ + cal_window_skips_) - work_before;
  if (++pops_since_width_ < kWidthCheckPops) return;
  if (work_since_width_ > kWorkPerPopBudget * pops_since_width_) {
    const Time span = now_ - width_epoch_;
    const Duration fresh = std::clamp<Duration>(
        2 * span / static_cast<Time>(pops_since_width_), milliseconds(1),
        kMaxWidth);
    if (fresh >= 2 * width_ || width_ >= 2 * fresh) {
      cal_resize(heads_.size(), fresh);  // also resets the width counters
      return;
    }
  }
  pops_since_width_ = 0;
  work_since_width_ = 0;
  width_epoch_ = now_;
}

// ---------------------------------------------------------------------------
// Sharded-round protocol (driven by sim::ShardedEngine). A round runs the
// queue up to a horizon H chosen so that every event scheduled *during* the
// round with when < H is provably destined for this same shard (cross-cut
// deliveries pay at least the engine lookahead). Such spawns insert directly
// with a provisional seq (top bit set, low bits = arena index): provisional
// seqs compare after every shared seq at the same `when`, and among
// themselves in creation order, which is exactly the serial engine's order
// for same-shard spawns. Spawns at or past H are captured instead of
// inserted; the coordinator merges captures from all shards into the serial
// schedule order and re-inserts them with fresh shared seqs between rounds.
// ---------------------------------------------------------------------------

void EventQueue::begin_round(Time horizon) {
  BECAUSE_CHECK(backend_ == EngineBackend::kCalendar,
                "sharded rounds require the calendar backend");
  BECAUSE_CHECK(!round_active_, "begin_round during an active round");
  horizon_ = horizon;
  round_active_ = true;
}

void EventQueue::end_round() {
  BECAUSE_CHECK(round_active_, "end_round without a matching begin_round");
  round_active_ = false;
}

void EventQueue::clear_round_logs() {
  captures_.clear();
  provisional_arena_.clear();
}

void EventQueue::insert_captured(CapturedEvent&& cap) {
  BECAUSE_CHECK(!round_active_,
                "insert_captured must run between rounds, not inside one");
  BECAUSE_ASSERT(cap.when >= now_, "captured event at t=" << cap.when
                                       << " precedes the clock now=" << now_);
  // The schedule that produced this capture already counted in scheduled_ on
  // the spawning shard, so re-insertion must not count again.
  Event event;
  event.when = cap.when;
  event.seq = take_seq();
  event.kind = cap.kind;
  if (cap.fn == nullptr) {
    event.fn = &EventQueue::run_closure_slot;
    event.a = intern_closure(std::move(cap.closure));
  } else {
    event.fn = cap.fn;
    event.ctx = cap.ctx;
    event.a = cap.a;
    event.b = cap.b;
  }
  cal_insert(event);
}

bool EventQueue::peek_next_when(Time& out) {
  if (size_ == 0) return false;
  if (backend_ == EngineBackend::kFunctionHeap) {
    out = heap_.front().when;
    return true;
  }
  // The calendar has no O(1) front, so peek by pop + reinsert. cal_pop does
  // not advance now_ or the pop-order checker, and the reinserted event keeps
  // its seq, so ordering is unchanged; the duplicated scan work is amortised
  // by the retune logic exactly like a regular pop.
  Event event;
  const bool popped = cal_pop(event);
  BECAUSE_ASSERT(popped, "peek on a non-empty calendar found no event");
  cal_insert(event);
  out = event.when;
  // The pop may have advanced the cursor into the event's window (or jumped
  // via the full-cycle fallback); rewind to now_'s window as run_until does.
  cursor_top_ = (now_ / width_) * width_ + width_;
  cursor_ = bucket_index(now_);
  return true;
}

}  // namespace because::sim
