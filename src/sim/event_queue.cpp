#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace because::sim {

void EventQueue::schedule_at(Time when, Action action) {
  if (when < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  queue_.push(Entry{when, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(Duration delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

std::uint64_t EventQueue::run() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    // Move the action out before popping so re-entrant scheduling is safe.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    entry.action();
    ++count;
    ++executed_;
  }
  return count;
}

std::uint64_t EventQueue::run_until(Time deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.when;
    entry.action();
    ++count;
    ++executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace because::sim
