// Space-parallel conservative-synchronization driver over K shard
// EventQueues (one per partition of the AS graph; topology/partition.hpp).
//
// The engine advances all shards in lockstep *rounds*. Each round:
//
//   1. The coordinator peeks the globally earliest pending event time M and
//      sets the horizon H = M + lookahead, where lookahead <= the minimum
//      link delay across partition-cut edges (plus whatever other latency
//      floor the workload guarantees for cross-shard interactions).
//   2. Every shard worker runs its queue through [.., H-1] in parallel.
//      Events executed in this window can only have been scheduled by this
//      shard (anything crossing the cut pays >= lookahead and so lands at or
//      beyond H), which is why the window is data-race free by construction.
//   3. Schedule calls made during the window targeting times >= H are
//      *captured*, not inserted (EventQueue round mode). Between rounds the
//      coordinator merges all captures in the exact order a serial engine
//      would have made the same schedule calls, routes each through the
//      dispatcher (which may translate cross-shard payloads and pick the
//      destination shard), and re-inserts them drawing the shared sequence
//      counter — so every event that survives a round boundary carries a
//      globally ordered seq, and per-queue pop order is the serial order.
//
// Bit-identity across shard counts follows: the merge order is a pure
// function of the serial schedule-call order (see DESIGN.md §5j for the
// ordering proof), and within a round all execution is shard-local.
//
// Workers are persistent tasks on an engine-owned util::ThreadPool parked on
// the annotated Control barrier below; each installs its own obs trace lane
// so per-lane trace streams keep the one-writer invariant.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace because::sim {

class ShardedEngine {
 public:
  struct Config {
    /// Conservative lookahead: a lower bound on the sim-time latency of any
    /// cross-shard interaction. Must be > 0; correctness requires it to be
    /// <= the true minimum (the engine cannot check that), and events that
    /// must carry globally ordered seqs (collector records) must always be
    /// scheduled at least `lookahead` ahead so they are captured.
    Duration lookahead = milliseconds(1);
    /// Run the round protocol even with a single shard (tests exercise the
    /// capture/merge machinery against the plain-run reference this way).
    bool force_rounds = false;
  };

  /// Routes one captured event between rounds: returns the destination shard
  /// and may rewrite the capture in place (cross-shard payload translation,
  /// e.g. bgp::Network re-interning an AS path into the target shard's
  /// table). Called on the coordinator thread only, in merge order.
  using Dispatcher =
      std::function<std::uint32_t(std::uint32_t src_shard,
                                  EventQueue::CapturedEvent& cap)>;

  /// `queues` are the per-shard queues (calendar backend, one shared seq
  /// counter bound by the caller); they must outlive the engine.
  ShardedEngine(std::vector<EventQueue*> queues, const Config& config,
                Dispatcher dispatcher);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  /// Run rounds until every shard queue is drained; returns the total number
  /// of events executed across all shards. With one shard and force_rounds
  /// off this is exactly queues[0]->run().
  std::uint64_t run();

  /// Rounds completed so far (diagnostics; 0 after a plain serial run).
  std::uint64_t rounds() const { return rounds_; }

 private:
  /// Coordinator/worker round barrier. Workers park on work_cv until the
  /// round counter advances, run their shard to the horizon, and the last
  /// one out signals done_cv. All cross-thread state lives here, guarded.
  struct Control {
    util::Mutex mutex;
    util::CondVar work_cv;
    util::CondVar done_cv;
    /// Round generation; a worker runs when it observes a value above the
    /// one it last completed.
    std::uint64_t round BECAUSE_GUARDED_BY(mutex) = 0;
    std::uint32_t running BECAUSE_GUARDED_BY(mutex) = 0;
    Time horizon BECAUSE_GUARDED_BY(mutex) = 0;
    bool stop BECAUSE_GUARDED_BY(mutex) = false;
    std::uint64_t executed BECAUSE_GUARDED_BY(mutex) = 0;
    /// First worker failure; rethrown by the coordinator at the barrier.
    std::exception_ptr error BECAUSE_GUARDED_BY(mutex);
  };

  void start_workers();
  void worker_loop(std::uint32_t shard, std::uint32_t lane);
  /// Signal one round at `horizon` and block until all workers finish it.
  void run_round(Time horizon);
  /// Sort all shards' captures into serial schedule-call order and re-insert
  /// them through the dispatcher.
  void merge_captures();

  // Serial-order comparators over capture/spawner identities. A schedule
  // call is (spawner event, call index); an event is (when, seq) plus, for
  // provisional seqs, the shard whose arena resolves them. Recursion through
  // provisional spawners terminates because arena indices strictly decrease
  // along the ancestry and every chain roots in a shared-seq event.
  bool less_call(std::uint32_t sa, Time wa, std::uint64_t qa, std::uint32_t ca,
                 std::uint32_t sb, Time wb, std::uint64_t qb,
                 std::uint32_t cb) const;
  bool less_event(std::uint32_t sa, Time wa, std::uint64_t qa,
                  std::uint32_t sb, Time wb, std::uint64_t qb) const;

  std::vector<EventQueue*> queues_;
  Config config_;
  Dispatcher dispatcher_;
  std::uint64_t rounds_ = 0;
  /// First trace lane for shard workers; derived from the constructing
  /// thread's lane so nested (campaign-cell x shard) lanes never collide.
  std::uint32_t lane_base_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
  Control control_;
};

}  // namespace because::sim
