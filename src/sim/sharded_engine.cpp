#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace because::sim {

namespace {

// Shard-worker trace lanes live far above the campaign-cell lanes (cell
// index for runner workers, 0 for single-threaded code) so the two spaces
// never collide; each cell gets a block of kMaxShardsPerCell lanes.
constexpr std::uint32_t kShardLaneBase = 0x10000;
constexpr std::uint32_t kMaxShardsPerCell = 64;

}  // namespace

ShardedEngine::ShardedEngine(std::vector<EventQueue*> queues,
                             const Config& config, Dispatcher dispatcher)
    : queues_(std::move(queues)),
      config_(config),
      dispatcher_(std::move(dispatcher)),
      lane_base_(kShardLaneBase + obs::trace_lane() * kMaxShardsPerCell) {
  BECAUSE_CHECK(!queues_.empty(), "ShardedEngine: no shard queues");
  BECAUSE_CHECK(queues_.size() <= kMaxShardsPerCell,
                "ShardedEngine: " << queues_.size() << " shards exceeds the "
                                  << kMaxShardsPerCell << "-lane block");
  for (const EventQueue* queue : queues_)
    BECAUSE_CHECK(queue != nullptr, "ShardedEngine: null shard queue");
}

ShardedEngine::~ShardedEngine() {
  if (pool_ == nullptr) return;
  {
    util::MutexLock lock(control_.mutex);
    control_.stop = true;
  }
  control_.work_cv.notify_all();
  for (std::future<void>& worker : workers_) worker.get();
  // pool_'s destructor joins the (now idle) worker threads.
}

std::uint64_t ShardedEngine::run() {
  if (queues_.size() == 1 && !config_.force_rounds) return queues_[0]->run();
  BECAUSE_CHECK(config_.lookahead > 0,
                "ShardedEngine: round mode needs a positive lookahead");
  start_workers();
  std::uint64_t before = 0;
  {
    util::MutexLock lock(control_.mutex);
    before = control_.executed;
  }
  for (;;) {
    // M = earliest pending event across all shards; empty queues everywhere
    // means the campaign is drained.
    bool any = false;
    Time earliest = 0;
    for (EventQueue* queue : queues_) {
      Time when = 0;
      if (queue->peek_next_when(when) && (!any || when < earliest)) {
        earliest = when;
        any = true;
      }
    }
    if (!any) break;
    ++rounds_;
    run_round(earliest + config_.lookahead);
    merge_captures();
    for (EventQueue* queue : queues_) queue->clear_round_logs();
  }
  util::MutexLock lock(control_.mutex);
  return control_.executed - before;
}

void ShardedEngine::start_workers() {
  if (pool_ != nullptr) return;
  const auto shards = static_cast<std::uint32_t>(queues_.size());
  pool_ = std::make_unique<util::ThreadPool>(shards);
  workers_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t lane = lane_base_ + s;
    workers_.push_back(
        pool_->submit([this, s, lane] { worker_loop(s, lane); }));
  }
}

void ShardedEngine::worker_loop(std::uint32_t shard, std::uint32_t lane) {
  // One lane per (cell, shard): rfd suppress/release instants fire from the
  // router hot path on this thread, and the trace contract wants every lane
  // written by exactly one thread per round. The lane is stable across
  // rounds, so per-lane order is this shard's deterministic program order.
  obs::TraceLaneScope lane_scope(lane);
  EventQueue& queue = *queues_[shard];
  std::uint64_t completed = 0;
  for (;;) {
    Time horizon = 0;
    {
      util::MutexLock lock(control_.mutex);
      while (control_.round == completed && !control_.stop)
        control_.work_cv.wait(control_.mutex);
      if (control_.stop) return;
      completed = control_.round;
      horizon = control_.horizon;
    }
    // The round body touches only this shard's state (queue, routers,
    // sessions, slabs, stores, rng lanes) — never the barrier fields — so it
    // runs unlocked. run_until(H-1) and not H: events at exactly H may be
    // captured spawns racing in from other shards next round.
    std::uint64_t ran = 0;
    std::exception_ptr failure;
    try {
      queue.begin_round(horizon);
      ran = queue.run_until(horizon - 1);
      queue.end_round();
    } catch (...) {
      failure = std::current_exception();
    }
    util::MutexLock lock(control_.mutex);
    control_.executed += ran;
    if (failure != nullptr) {
      if (control_.error == nullptr) control_.error = failure;
      control_.stop = true;
    }
    if (--control_.running == 0) control_.done_cv.notify_one();
    if (control_.stop) return;
  }
}

void ShardedEngine::run_round(Time horizon) {
  {
    util::MutexLock lock(control_.mutex);
    control_.horizon = horizon;
    control_.running = static_cast<std::uint32_t>(queues_.size());
    ++control_.round;
  }
  control_.work_cv.notify_all();
  util::MutexLock lock(control_.mutex);
  while (control_.running > 0) control_.done_cv.wait(control_.mutex);
  if (control_.error != nullptr) {
    std::exception_ptr error = control_.error;
    control_.error = nullptr;
    std::rethrow_exception(error);
  }
}

void ShardedEngine::merge_captures() {
  struct Ref {
    std::uint32_t shard;
    std::uint32_t index;
  };
  std::vector<Ref> order;
  for (std::uint32_t s = 0; s < queues_.size(); ++s) {
    const auto count =
        static_cast<std::uint32_t>(queues_[s]->captures().size());
    for (std::uint32_t i = 0; i < count; ++i) order.push_back(Ref{s, i});
  }
  // Serial schedule-call order: captures from one spawner by call index,
  // spawners by serial event order. std::sort suffices (no two captures
  // share a (spawner, call_index) key, so the order is total).
  std::sort(order.begin(), order.end(), [this](const Ref& a, const Ref& b) {
    const EventQueue::CapturedEvent& ca = queues_[a.shard]->captures()[a.index];
    const EventQueue::CapturedEvent& cb = queues_[b.shard]->captures()[b.index];
    return less_call(a.shard, ca.spawner_when, ca.spawner_seq, ca.call_index,
                     b.shard, cb.spawner_when, cb.spawner_seq, cb.call_index);
  });
  for (const Ref& ref : order) {
    EventQueue::CapturedEvent& cap = queues_[ref.shard]->captures()[ref.index];
    const std::uint32_t dst =
        dispatcher_ != nullptr ? dispatcher_(ref.shard, cap) : ref.shard;
    BECAUSE_ASSERT(dst < queues_.size(), "dispatcher routed a capture to shard "
                                             << dst << " of "
                                             << queues_.size());
    queues_[dst]->insert_captured(std::move(cap));
  }
}

bool ShardedEngine::less_call(std::uint32_t sa, Time wa, std::uint64_t qa,
                              std::uint32_t ca, std::uint32_t sb, Time wb,
                              std::uint64_t qb, std::uint32_t cb) const {
  // Same spawner: shared seqs are globally unique, provisional seqs only
  // within their shard's arena.
  const bool same_spawner =
      wa == wb && qa == qb &&
      ((qa & EventQueue::kProvisionalBit) == 0 || sa == sb);
  if (same_spawner) return ca < cb;
  return less_event(sa, wa, qa, sb, wb, qb);
}

bool ShardedEngine::less_event(std::uint32_t sa, Time wa, std::uint64_t qa,
                               std::uint32_t sb, Time wb,
                               std::uint64_t qb) const {
  if (wa != wb) return wa < wb;
  const bool prov_a = (qa & EventQueue::kProvisionalBit) != 0;
  const bool prov_b = (qb & EventQueue::kProvisionalBit) != 0;
  // A shared seq was drawn for a schedule call made strictly before the
  // current round's window opened (setup or an earlier round's merge); every
  // provisional seq belongs to a call made inside the window. Serial call
  // order respects that window partition, so shared precedes provisional.
  if (prov_a != prov_b) return !prov_a;
  if (!prov_a) return qa < qb;
  const auto ia = static_cast<std::size_t>(qa & ~EventQueue::kProvisionalBit);
  const auto ib = static_cast<std::size_t>(qb & ~EventQueue::kProvisionalBit);
  // Same shard: arena order is that shard's schedule-call order, which is
  // the serial relative order for shard-local calls.
  if (sa == sb) return ia < ib;
  // Different shards: order by the spawning calls. The spawner of a
  // provisional event is same-shard and sits earlier in the same arena, so
  // the recursion strictly descends and roots in shared-seq events.
  const EventQueue::ProvisionalNode& na = queues_[sa]->provisional_nodes()[ia];
  const EventQueue::ProvisionalNode& nb = queues_[sb]->provisional_nodes()[ib];
  return less_call(sa, na.spawner_when, na.spawner_seq, na.call_index, sb,
                   nb.spawner_when, nb.spawner_seq, nb.call_index);
}

}  // namespace because::sim
