#include "stats/classification.hpp"

namespace because::stats {

void ConfusionMatrix::add(bool predicted, bool actual) {
  if (predicted && actual) ++true_positives;
  else if (predicted && !actual) ++false_positives;
  else if (!predicted && actual) ++false_negatives;
  else ++true_negatives;
}

std::size_t ConfusionMatrix::total() const {
  return true_positives + false_positives + true_negatives + false_negatives;
}

double ConfusionMatrix::precision() const {
  const std::size_t denom = true_positives + false_positives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 1.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

}  // namespace because::stats
