// MCMC chain diagnostics: autocorrelation and effective sample size.
//
// Used in tests and the sampler micro-benchmarks to check that MH and HMC
// chains actually mix on the tomography posterior.
#pragma once

#include <span>
#include <vector>

namespace because::stats {

/// Autocorrelation of the chain at `lag` (biased estimator, standard for
/// ESS computation). Returns 0 for a constant chain.
double autocorrelation(std::span<const double> chain, std::size_t lag);

/// Effective sample size via Geyer's initial positive sequence: sum
/// consecutive autocorrelations until the pairwise sum goes non-positive.
double effective_sample_size(std::span<const double> chain);

}  // namespace because::stats
