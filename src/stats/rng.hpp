// Seeded random number generation.
//
// A single wrapper type so every stochastic component (topology generator,
// deployment sampler, MCMC proposals, noise injection) draws from an
// explicitly seeded stream and experiments replay exactly.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace because::stats {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw.
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with success probability `p`.
  bool bernoulli(double p);

  /// Gamma(shape, scale) draw; used to build Beta variates.
  double gamma(double shape, double scale);

  /// Beta(alpha, beta) draw via two Gammas.
  double beta(double alpha, double beta);

  /// Exponential with given mean.
  double exponential(double mean);

  /// Choose an index in [0, size) uniformly. `size` must be > 0.
  std::size_t index(std::size_t size);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fork a child stream whose seed derives from this stream. Children are
  /// independent for all practical purposes and keep module seeds decoupled.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace because::stats
