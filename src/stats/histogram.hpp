// Fixed-bin histogram.
//
// Used by the burst-slope heuristic (Figure 10 groups announcements into 40
// time intervals) and by posterior-marginal rendering (Figure 9).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace because::stats {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi). Values outside are clamped into
  /// the first/last bin so bursts with boundary timestamps are not lost.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }

  /// Center of bin `bin` on the value axis.
  double bin_center(std::size_t bin) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Bin heights as doubles (for regression over histogram heights).
  std::vector<double> heights() const;

  /// Heights normalised so they sum to 1. Empty histogram returns zeros.
  std::vector<double> normalized() const;

  /// Compact ASCII sparkline of the histogram (for bench output).
  std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace because::stats
