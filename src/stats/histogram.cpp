#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace because::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need >= 1 bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::vector<double> Histogram::heights() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]);
  return out;
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return out;
}

std::string Histogram::ascii(std::size_t max_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t len = 0;
    if (peak > 0) len = counts_[i] * max_width / peak;
    out += std::string(len, '#');
    out += "  (" + std::to_string(counts_[i]) + ")\n";
  }
  return out;
}

}  // namespace because::stats
