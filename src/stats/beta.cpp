#include "stats/beta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace because::stats {

namespace {

/// Continued fraction for the incomplete beta function (Numerical-Recipes
/// style modified Lentz algorithm).
double beta_continued_fraction(double x, double a, double b) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 1e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;

  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;

    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

void require_params(double a, double b) {
  if (a <= 0.0 || b <= 0.0)
    throw std::invalid_argument("beta: parameters must be positive");
}

}  // namespace

double log_beta(double a, double b) {
  require_params(a, b);
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double beta_pdf(double x, double a, double b) {
  require_params(a, b);
  if (x < 0.0 || x > 1.0) return 0.0;
  if (x == 0.0) return a < 1.0 ? INFINITY : (a == 1.0 ? b : 0.0);
  if (x == 1.0) return b < 1.0 ? INFINITY : (b == 1.0 ? a : 0.0);
  return std::exp((a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) -
                  log_beta(a, b));
}

double beta_cdf(double x, double a, double b) {
  require_params(a, b);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;

  const double log_front = a * std::log(x) + b * std::log(1.0 - x) -
                           std::log(a) - log_beta(a, b);
  // Use the symmetry relation to keep the continued fraction convergent.
  double cdf;
  if (x < (a + 1.0) / (a + b + 2.0)) {
    cdf = std::exp(log_front) * beta_continued_fraction(x, a, b);
  } else {
    const double log_front_sym = b * std::log(1.0 - x) + a * std::log(x) -
                                 std::log(b) - log_beta(b, a);
    cdf = 1.0 - std::exp(log_front_sym) * beta_continued_fraction(1.0 - x, b, a);
  }
  // The continued fraction can wobble a hair outside [0,1] in the last ulp;
  // anything further means the expansion diverged.
  BECAUSE_ASSERT(cdf >= -1e-9 && cdf <= 1.0 + 1e-9,
                 "beta_cdf(" << x << ", " << a << ", " << b
                             << ") diverged to " << cdf);
  return std::clamp(cdf, 0.0, 1.0);
}

double beta_quantile(double q, double a, double b) {
  require_params(a, b);
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("beta_quantile: q outside [0,1]");
  if (q == 0.0) return 0.0;
  if (q == 1.0) return 1.0;

  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (beta_cdf(mid, a, b) < q) lo = mid;
    else hi = mid;
    if (hi - lo < 1e-13) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace because::stats
