// Gelman-Rubin convergence diagnostic (potential scale reduction factor).
//
// Standard practice for the MCMC methods BeCAUSe relies on: run several
// chains from dispersed starting points and compare within-chain to
// between-chain variance. R-hat near 1 indicates the chains sample the same
// distribution; values above ~1.1 flag non-convergence (e.g. chains stuck
// in different modes of the damper/confounder posterior).
#pragma once

#include <span>
#include <vector>

namespace because::stats {

/// Split-R-hat over M chains of equal length for one scalar parameter.
/// Each chain is split in half (so M*2 segments), which also detects
/// within-chain drift. Requires >= 2 chains with >= 4 samples each.
/// Returns 1.0 for perfectly agreeing constant chains.
double gelman_rubin(const std::vector<std::vector<double>>& chains);

}  // namespace because::stats
