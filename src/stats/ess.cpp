#include "stats/ess.hpp"

#include <algorithm>
#include <stdexcept>

namespace because::stats {

double autocorrelation(std::span<const double> chain, std::size_t lag) {
  const std::size_t n = chain.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: need >= 2 samples");
  if (lag >= n) return 0.0;

  double m = 0.0;
  for (double x : chain) m += x;
  m /= static_cast<double>(n);

  double denom = 0.0;
  for (double x : chain) denom += (x - m) * (x - m);
  if (denom == 0.0) return 0.0;

  double num = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i)
    num += (chain[i] - m) * (chain[i + lag] - m);
  return num / denom;
}

double effective_sample_size(std::span<const double> chain) {
  const std::size_t n = chain.size();
  if (n < 4) return static_cast<double>(n);

  // Geyer initial positive sequence over paired lags.
  double rho_sum = 0.0;
  for (std::size_t lag = 1; lag + 1 < n; lag += 2) {
    const double pair =
        autocorrelation(chain, lag) + autocorrelation(chain, lag + 1);
    if (pair <= 0.0) break;
    rho_sum += pair;
  }
  const double denom = 1.0 + 2.0 * rho_sum;
  if (denom <= 0.0) return static_cast<double>(n);
  return std::min(static_cast<double>(n), static_cast<double>(n) / denom);
}

}  // namespace because::stats
