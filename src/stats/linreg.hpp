// Ordinary least squares fit of y = intercept + slope * x.
//
// The paper's third heuristic (§5.2.3) fits a line to the histogram heights
// of announcements during a Burst and scores the slope / relative change.
#pragma once

#include <span>

namespace because::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination; 0 when y has no variance.
  double r_squared = 0.0;

  double at(double x) const { return intercept + slope * x; }
};

/// Least-squares fit. Requires >= 2 points and non-constant x.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Convenience: fit y over x = 0,1,2,... (histogram-height regression).
LinearFit linear_fit_indexed(std::span<const double> ys);

}  // namespace because::stats
