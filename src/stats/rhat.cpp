#include "stats/rhat.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace because::stats {

double gelman_rubin(const std::vector<std::vector<double>>& chains) {
  if (chains.size() < 2)
    throw std::invalid_argument("gelman_rubin: need >= 2 chains");
  std::size_t len = chains.front().size();
  for (const auto& chain : chains) {
    if (chain.size() != len)
      throw std::invalid_argument("gelman_rubin: unequal chain lengths");
  }
  if (len < 4) throw std::invalid_argument("gelman_rubin: chains too short");

  // Split each chain in half.
  std::vector<std::vector<double>> segments;
  const std::size_t half = len / 2;
  for (const auto& chain : chains) {
    segments.emplace_back(chain.begin(), chain.begin() + half);
    segments.emplace_back(chain.begin() + half, chain.begin() + 2 * half);
  }

  const auto m = static_cast<double>(segments.size());
  const auto n = static_cast<double>(half);

  std::vector<double> segment_means;
  double within = 0.0;
  for (const auto& segment : segments) {
    segment_means.push_back(mean(segment));
    within += variance(segment);
  }
  within /= m;

  const double grand = mean(segment_means);
  double between = 0.0;
  for (double sm : segment_means) between += (sm - grand) * (sm - grand);
  between *= n / (m - 1.0);

  // Degenerate (near-)constant segments: floating-point summation can leave
  // a vanishing but nonzero within-variance, so compare against the scale
  // of the values rather than exact zero.
  const double scale = 1.0 + std::abs(grand);
  if (within <= 1e-12 * scale * scale) {
    return between <= 1e-12 * scale * scale
               ? 1.0
               : std::numeric_limits<double>::infinity();
  }

  const double var_plus = ((n - 1.0) / n) * within + between / n;
  return std::sqrt(var_plus / within);
}

}  // namespace because::stats
