// Empirical cumulative distribution function.
//
// Figures 8 and 13 of the paper are CDFs (propagation time; re-advertisement
// delta). Ecdf stores the sorted sample and answers F(x) queries plus
// evenly-spaced rendering points for bench output.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace because::stats {

class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  double at(double x) const;

  /// Inverse CDF with linear interpolation; q in [0,1].
  double quantile(double q) const;

  std::size_t size() const { return samples_.size(); }
  const std::vector<double>& sorted_samples() const { return samples_; }

  /// `points` (x, F(x)) pairs spanning the sample range, for plotting/tables.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> samples_;  // sorted ascending
};

}  // namespace because::stats
