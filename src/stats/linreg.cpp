#include "stats/linreg.hpp"

#include <stdexcept>
#include <vector>

namespace because::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("linear_fit: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) throw std::invalid_argument("linear_fit: need >= 2 points");

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("linear_fit: constant x");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ys[i] - fit.at(xs[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

LinearFit linear_fit_indexed(std::span<const double> ys) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return linear_fit(xs, ys);
}

}  // namespace because::stats
