#include "stats/hdpi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace because::stats {

Interval hdpi(std::span<const double> samples, double mass) {
  if (samples.empty()) throw std::invalid_argument("hdpi: empty sample");
  if (mass <= 0.0 || mass > 1.0) throw std::invalid_argument("hdpi: mass outside (0,1]");

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const auto window = std::min<std::size_t>(
      n, std::max<std::size_t>(
             1, static_cast<std::size_t>(std::ceil(mass * static_cast<double>(n)))));

  if (window == n) return Interval{sorted.front(), sorted.back()};

  std::size_t best = 0;
  double best_width = sorted[window - 1] - sorted[0];
  for (std::size_t i = 1; i + window <= n; ++i) {
    const double width = sorted[i + window - 1] - sorted[i];
    if (width < best_width) {
      best_width = width;
      best = i;
    }
  }
  return Interval{sorted[best], sorted[best + window - 1]};
}

}  // namespace because::stats
