// Descriptive statistics over sample vectors.
#pragma once

#include <span>
#include <vector>

namespace because::stats {

/// Arithmetic mean. Empty input throws.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Needs >= 2 samples.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Empirical quantile with linear interpolation; q in [0,1].
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Pearson correlation of two equal-length vectors.
double correlation(std::span<const double> xs, std::span<const double> ys);

}  // namespace because::stats
