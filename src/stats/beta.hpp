// Beta distribution functions: pdf, cdf (regularized incomplete beta) and
// quantile.
//
// Used for analytic cross-checks of the samplers: a single-AS tomography
// dataset with k property-paths out of n has the conjugate posterior
// Beta(alpha + k, beta + n - k), so MCMC marginals can be verified against
// closed form (see mcmc conjugacy tests), and HDPI coverage can be checked
// against exact quantiles.
#pragma once

namespace because::stats {

/// log Beta function log B(a, b).
double log_beta(double a, double b);

/// Beta(a, b) density at x in [0, 1].
double beta_pdf(double x, double a, double b);

/// Regularized incomplete beta I_x(a, b) = P(X <= x) for X ~ Beta(a, b).
/// Continued-fraction evaluation (Lentz), accurate to ~1e-12.
double beta_cdf(double x, double a, double b);

/// Inverse CDF by bisection on beta_cdf; q in [0, 1].
double beta_quantile(double q, double a, double b);

}  // namespace because::stats
