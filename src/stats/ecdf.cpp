#include "stats/ecdf.hpp"

#include <algorithm>
#include <stdexcept>

namespace because::stats {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)) {
  if (samples_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(samples_.begin(), samples_.end());
}

double Ecdf::at(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Ecdf::quantile: q outside [0,1]");
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  if (points < 2) throw std::invalid_argument("Ecdf::curve: need >= 2 points");
  const double lo = samples_.front();
  const double hi = samples_.back();
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

}  // namespace because::stats
