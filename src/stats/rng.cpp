#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace because::stats {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  BECAUSE_ASSERT(lo <= hi, "uniform range inverted: [" << lo << ", " << hi
                                                       << ")");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  // NaN compares false against both bounds and would reach the distribution,
  // whose behaviour is then undefined.
  BECAUSE_CHECK(!std::isnan(p), "bernoulli probability is NaN");
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::gamma(double shape, double scale) {
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

double Rng::beta(double alpha, double beta) {
  if (alpha <= 0.0 || beta <= 0.0)
    throw std::invalid_argument("Rng::beta: parameters must be positive");
  const double x = gamma(alpha, 1.0);
  const double y = gamma(beta, 1.0);
  if (x + y == 0.0) return 0.5;
  return x / (x + y);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(
      std::uniform_int_distribution<std::uint64_t>(0, size - 1)(engine_));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: only the first k slots need to be randomised.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork() {
  const std::uint64_t child_seed = engine_() ^ 0x9e3779b97f4a7c15ULL;
  return Rng(child_seed);
}

}  // namespace because::stats
