// Binary-classification scoring (precision / recall / F1).
//
// Used to reproduce Table 4: algorithm performance against ground truth.
#pragma once

#include <cstddef>

namespace because::stats {

struct ConfusionMatrix {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  /// Record one (predicted, actual) pair.
  void add(bool predicted, bool actual);

  std::size_t total() const;

  /// TP / (TP + FP); 1.0 when no positives were predicted (vacuous precision,
  /// matching the paper's convention of reporting 100% with zero FPs).
  double precision() const;

  /// TP / (TP + FN); 1.0 when there are no actual positives.
  double recall() const;

  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f1() const;

  double accuracy() const;
};

}  // namespace because::stats
