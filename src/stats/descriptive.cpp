#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace because::stats {

namespace {
void require_nonempty(std::span<const double> xs, const char* what) {
  if (xs.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
}
}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  require_nonempty(xs, "min");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  require_nonempty(xs, "max");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require_nonempty(xs, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("correlation: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("correlation: need >= 2 samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0)
    throw std::invalid_argument("correlation: zero variance input");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace because::stats
