// Highest Posterior Density Interval (the paper writes "HDPI").
//
// The smallest interval [A, B] containing a `mass` fraction of the posterior
// samples (§5.1.2). Its width quantifies the uncertainty of the mean
// estimate; Figure 11's y-axis is 1 - width.
#pragma once

#include <span>

namespace because::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double width() const { return hi - lo; }
  bool contains(double x) const { return x >= lo && x <= hi; }
};

/// Smallest interval containing `mass` (default 0.95) of the samples.
/// Computed over the sorted sample by sliding a window of ceil(mass*n)
/// samples and picking the narrowest span.
Interval hdpi(std::span<const double> samples, double mass = 0.95);

}  // namespace because::stats
