#include "rov/rov.hpp"

#include <algorithm>
#include <unordered_map>

#include "bgp/network.hpp"
#include "labeling/path_key.hpp"
#include "sim/event_queue.hpp"

namespace because::rov {

namespace {

double labeled_share(const std::vector<topology::AsPath>& paths,
                     const std::unordered_set<topology::AsId>& rov_ases) {
  if (paths.empty()) return 0.0;
  std::size_t labeled = 0;
  for (const topology::AsPath& path : paths) {
    for (topology::AsId as : path) {
      if (rov_ases.count(as) != 0) {
        ++labeled;
        break;
      }
    }
  }
  return static_cast<double>(labeled) / static_cast<double>(paths.size());
}

}  // namespace

std::unordered_set<topology::AsId> plant_rov_ases(
    const std::vector<topology::AsPath>& paths, double target_share,
    std::size_t max_ases, stats::Rng& rng, std::size_t min_ases) {
  // Candidate pool weighted by path frequency: ASs on many paths are the
  // realistic ROV adopters (large transit networks) and reach the target
  // share quickly, mirroring the paper's 90% ROV-path share.
  std::unordered_map<topology::AsId, std::size_t> frequency;
  for (const topology::AsPath& path : paths)
    for (topology::AsId as : path) ++frequency[as];

  std::vector<topology::AsId> pool;
  pool.reserve(frequency.size());
  for (const auto& [as, count] : frequency)
    for (std::size_t k = 0; k < count; ++k) pool.push_back(as);
  std::sort(pool.begin(), pool.end());  // deterministic base order

  std::unordered_set<topology::AsId> rov;
  while (rov.size() < max_ases && !pool.empty() &&
         (rov.size() < min_ases || labeled_share(paths, rov) < target_share)) {
    rov.insert(pool[rng.index(pool.size())]);
  }
  return rov;
}

RovMeasurement run_rov_measurement(const topology::AsGraph& graph,
                                   const std::unordered_set<topology::AsId>& rov_ases,
                                   const RovMeasurementConfig& config) {
  RovMeasurement result;
  result.rov_ases = rov_ases;

  sim::EventQueue queue;
  stats::Rng rng(config.seed);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  const auto ids = graph.as_ids();

  // Install RFC 6811 drop-invalid filters. The invalid prefixes are the
  // odd-numbered ones of each origin's pair.
  std::vector<bgp::Prefix> valid_prefixes, invalid_prefixes;
  for (std::size_t o = 0; o < config.origins; ++o) {
    valid_prefixes.push_back(bgp::Prefix{static_cast<std::uint32_t>(2 * o + 2), 24});
    invalid_prefixes.push_back(bgp::Prefix{static_cast<std::uint32_t>(2 * o + 3), 24});
  }
  for (topology::AsId as : rov_ases)
    for (const bgp::Prefix& invalid : invalid_prefixes)
      network.router(as).add_rov_invalid(invalid);

  // Pick origins (never ROV ASs: the experimenter controls them) and
  // vantage points.
  std::vector<topology::AsId> origin_pool;
  for (topology::AsId as : ids)
    if (rov_ases.count(as) == 0) origin_pool.push_back(as);
  std::vector<topology::AsId> origins;
  for (std::size_t o = 0; o < config.origins && !origin_pool.empty(); ++o)
    origins.push_back(origin_pool[rng.index(origin_pool.size())]);

  const std::size_t vp_count = std::min(config.vantage_points, ids.size());
  const auto vp_picks = rng.sample_without_replacement(ids.size(), vp_count);

  // Announce every pair and run to quiescence.
  for (std::size_t o = 0; o < origins.size(); ++o) {
    bgp::Router& router = network.router(origins[o]);
    const bgp::Prefix valid = valid_prefixes[o];
    const bgp::Prefix invalid = invalid_prefixes[o];
    queue.schedule_at(sim::seconds(static_cast<sim::Time>(o)), [&router, valid] {
      router.originate(valid, 0);
    });
    queue.schedule_at(sim::seconds(static_cast<sim::Time>(o)), [&router, invalid] {
      router.originate(invalid, 0);
    });
  }
  queue.run();

  // Measure: compare valid vs invalid routes at every vantage point.
  std::size_t rov_labeled = 0;
  topology::PathTable& paths = *network.paths();
  for (std::size_t pick : vp_picks) {
    const topology::AsId vp = ids[pick];
    const bgp::Router& router = network.router(vp);
    for (std::size_t o = 0; o < origins.size(); ++o) {
      const auto* valid_sel = router.loc_rib().find(valid_prefixes[o]);
      if (valid_sel == nullptr) continue;  // VP cannot see this origin at all
      const auto valid_span = paths.span(valid_sel->route.path);
      topology::AsPath path{vp};
      path.insert(path.end(), valid_span.begin(), valid_span.end());
      path = labeling::clean_path(path);
      if (path.empty()) continue;

      const auto* invalid_sel = router.loc_rib().find(invalid_prefixes[o]);
      bool measured_rov = true;
      if (invalid_sel != nullptr) {
        const auto invalid_span = paths.span(invalid_sel->route.path);
        topology::AsPath invalid_path{vp};
        invalid_path.insert(invalid_path.end(), invalid_span.begin(),
                            invalid_span.end());
        measured_rov = labeling::clean_path(invalid_path) != path;
      }

      const bool exact = std::any_of(path.begin(), path.end(),
                                     [&](topology::AsId as) {
                                       return rov_ases.count(as) != 0;
                                     });
      if (measured_rov != exact) ++result.label_disagreements;
      if (measured_rov) ++rov_labeled;
      ++result.paths_total;
      result.dataset.add_path(path, measured_rov);
    }
  }
  result.rov_path_share =
      result.paths_total == 0
          ? 0.0
          : static_cast<double>(rov_labeled) /
                static_cast<double>(result.paths_total);
  return result;
}

RovBenchmark make_rov_benchmark(const std::vector<topology::AsPath>& paths,
                                std::unordered_set<topology::AsId> rov_ases) {
  RovBenchmark bench;
  std::size_t labeled = 0;
  for (const topology::AsPath& path : paths) {
    const bool rov = std::any_of(path.begin(), path.end(), [&](topology::AsId as) {
      return rov_ases.count(as) != 0;
    });
    if (rov) ++labeled;
    bench.dataset.add_path(path, rov);
  }
  bench.rov_ases = std::move(rov_ases);
  bench.rov_path_share =
      paths.empty() ? 0.0
                    : static_cast<double>(labeled) / static_cast<double>(paths.size());
  return bench;
}

}  // namespace because::rov
