// Route Origin Validation benchmark (§7).
//
// The paper benchmarks BeCAUSe on a *simulated* ROV measurement: real AS
// paths are labeled ROV iff a known ROV-filtering AS is on the path (90% of
// paths labeled ROV, no noise). We reproduce that construction: paths come
// from the simulated topology, the ROV deployment set is planted so the
// labeled share matches a target, labels are exact, and the same BeCAUSe
// pipeline runs unchanged on the resulting dataset.
#pragma once

#include <unordered_set>
#include <vector>

#include "labeling/dataset.hpp"
#include "stats/rng.hpp"
#include "topology/paths.hpp"

namespace because::rov {

struct RovBenchmark {
  labeling::PathDataset dataset;
  std::unordered_set<topology::AsId> rov_ases;  ///< planted ground truth
  double rov_path_share = 0.0;                  ///< fraction of ROV paths
};

/// Plant a ROV deployment: repeatedly add a random AS (preferring ones that
/// appear on many paths) until at least `target_share` of `paths` contain a
/// ROV AS *and* at least `min_ases` ASs are deployed, stopping at
/// `max_ases`. The minimum mirrors the paper's dataset, where dozens of
/// known ROV ASs produce a 90% ROV path share (most of them "hiding" behind
/// the large ones - the §7 recall limit).
std::unordered_set<topology::AsId> plant_rov_ases(
    const std::vector<topology::AsPath>& paths, double target_share,
    std::size_t max_ases, stats::Rng& rng, std::size_t min_ases = 0);

/// Label `paths` against `rov_ases` and assemble the tomography dataset.
RovBenchmark make_rov_benchmark(const std::vector<topology::AsPath>& paths,
                                std::unordered_set<topology::AsId> rov_ases);

/// A fully *measured* ROV experiment (the Reuter-style methodology the
/// paper's §7 data sources build on): each origin announces a valid/invalid
/// prefix pair; ROV ASs drop the invalid one on import (RFC 6811); at each
/// vantage point the valid-prefix path is labeled ROV iff the invalid
/// prefix is missing or arrives on a different path (it was filtered
/// somewhere along the valid route).
struct RovMeasurementConfig {
  std::size_t origins = 3;          ///< beacon origins (one prefix pair each)
  std::size_t vantage_points = 25;
  std::uint64_t seed = 7;
};

struct RovMeasurement {
  /// Valid-prefix paths with measured ROV labels.
  labeling::PathDataset dataset;
  std::unordered_set<topology::AsId> rov_ases;  ///< planted ground truth
  double rov_path_share = 0.0;
  std::size_t paths_total = 0;
  /// Paths whose measured label disagrees with exact set membership
  /// (possible when filtering reroutes the invalid prefix upstream).
  std::size_t label_disagreements = 0;
};

RovMeasurement run_rov_measurement(const topology::AsGraph& graph,
                                   const std::unordered_set<topology::AsId>& rov_ases,
                                   const RovMeasurementConfig& config = {});

}  // namespace because::rov
