// The AS 701 story (§5.1 / Figure 9c): an AS that damps one neighbor
// session but not another. Most of its paths are clean (they enter via the
// exempt session), so its marginal posterior looks like a *non*-damper; the
// binary/SAT view of the data is outright contradictory; and only the Eq. 8
// pinpointing step recovers it.
//
//   $ ./example_inconsistent_damper
#include <cstdio>

#include "baselines/binary_sat.hpp"
#include "beacon/controller.hpp"
#include "bgp/network.hpp"
#include "collector/vantage_point.hpp"
#include "experiment/pipeline.hpp"
#include "labeling/signature.hpp"
#include "util/strings.hpp"

int main() {
  using namespace because;

  // Three beacon sites: site 1 under tier-1 AS 2, site 5 under tier-1 AS 3,
  // site 6 under transit AS 750. AS 701 buys transit from both tier-1s and
  // damps the session towards 2 (a historically noisy neighbor) while
  // exempting 3. Prefixes from site 1 reach 701 via 2 (shortest) and get
  // damped; prefixes from site 5 reach it via 3 and flow clean. The VP
  // stubs 800..804 are dual-homed to 701 and 750, so site 6's prefixes give
  // them clean paths that avoid 701 entirely (the abundant clean evidence
  // real collector peers have). VPs 900/901 are controls under the tier-1s.
  topology::AsGraph graph;
  graph.add_as(1, topology::Tier::kStub);
  graph.add_as(5, topology::Tier::kStub);
  graph.add_as(6, topology::Tier::kStub);
  graph.add_as(2, topology::Tier::kTier1);
  graph.add_as(3, topology::Tier::kTier1);
  graph.add_as(701, topology::Tier::kTransit);
  graph.add_as(750, topology::Tier::kTransit);
  graph.add_peering(2, 3);
  graph.add_provider_customer(2, 1);
  graph.add_provider_customer(3, 5);
  graph.add_provider_customer(2, 701);
  graph.add_provider_customer(3, 701);
  graph.add_provider_customer(3, 750);
  graph.add_provider_customer(750, 6);
  for (topology::AsId vp = 800; vp <= 804; ++vp) {
    graph.add_as(vp, topology::Tier::kStub);
    graph.add_provider_customer(701, vp);
    graph.add_provider_customer(750, vp);
  }
  graph.add_as(900, topology::Tier::kStub);
  graph.add_provider_customer(3, 900);
  // Several control VPs under tier-1 AS 2: a real tier-1 carries abundant
  // clean evidence, which is what rules it out on the damped paths.
  for (topology::AsId vp = 901; vp <= 905; ++vp) {
    graph.add_as(vp, topology::Tier::kStub);
    graph.add_provider_customer(2, vp);
  }

  sim::EventQueue queue;
  stats::Rng rng(7);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  bgp::DampingRule rule;
  rule.params = rfd::cisco_defaults();
  rule.exempt_neighbors = {3};  // the heterogeneous configuration
  network.router(701).add_damping_rule(rule);

  collector::UpdateStore store(network.paths());
  for (topology::AsId vp : {800u, 801u, 802u, 803u, 804u, 900u, 901u, 902u,
                            903u, 904u, 905u}) {
    collector::VantagePointConfig config;
    config.as = vp;
    config.project = collector::Project::kIsolario;
    collector::attach_vantage_point(network, store, config, rng);
  }

  // Independent 1 min beacon prefixes: 2 from site 1 (damped at 701),
  // 4 from site 5 (clean at 701) - the paper's "majority of labeled paths
  // via the exempt neighbor".
  beacon::Controller controller(network);
  std::vector<std::pair<bgp::Prefix, beacon::BeaconSchedule>> experiments;
  std::uint32_t next_prefix = 1;
  auto deploy = [&](topology::AsId site, int count) {
    for (int k = 0; k < count; ++k) {
      beacon::BeaconSchedule schedule;
      schedule.update_interval = sim::minutes(1);
      schedule.burst_length = sim::minutes(30);
      schedule.break_length = sim::hours(2);
      schedule.pairs = 3;
      schedule.start = static_cast<sim::Time>(next_prefix) * sim::seconds(5);
      const bgp::Prefix prefix{next_prefix++, 24};
      controller.deploy(site, prefix, schedule);
      experiments.emplace_back(prefix, schedule);
    }
  };
  deploy(1, 2);  // damped at 701 (arrive via the damped session to 2)
  deploy(5, 2);  // clean at 701 (arrive via the exempt session to 3)
  deploy(6, 10); // clean and avoiding 701 entirely (pins the VPs)
  queue.run();

  std::vector<labeling::LabeledPath> labeled;
  for (const auto& [prefix, schedule] : experiments) {
    auto paths = labeling::label_paths(store, prefix, schedule);
    labeled.insert(labeled.end(), paths.begin(), paths.end());
  }
  std::size_t rfd_paths = 0, rfd_via_701 = 0, clean_via_701 = 0;
  for (const auto& p : labeled) {
    if (p.rfd) ++rfd_paths;
    for (topology::AsId as : p.path) {
      if (as != 701) continue;
      if (p.rfd) ++rfd_via_701;
      else ++clean_via_701;
    }
  }
  std::printf("%zu labeled paths, %zu RFD\n", labeled.size(), rfd_paths);
  std::printf("AS 701 appears on %zu RFD and %zu clean paths "
              "(the contradictory evidence)\n", rfd_via_701, clean_via_701);

  // The SAT view: contradictory.
  labeling::PathDataset sat_data;
  for (const auto& p : labeled) sat_data.add_path(p.path, p.rfd, {1, 5, 6});
  const auto sat = baselines::solve_binary_tomography(sat_data);
  std::printf("binary (SAT) tomography satisfiable: %s (%zu conflicting paths)\n",
              sat.satisfiable ? "yes" : "NO", sat.conflicting_paths.size());

  // BeCAUSe: the marginal looks clean-ish, the pinpointing step flags it.
  auto config = experiment::InferenceConfig::fast();
  config.mh.samples = 1500;
  config.mh.burn_in = 700;
  const auto result = experiment::run_inference(labeled, {1, 5, 6}, config);

  const auto node = result.dataset.index_of(701);
  if (node.has_value()) {
    const auto& s = result.mh_summaries[*node];
    std::printf("\nAS 701 marginal: mean %.2f, 95%% HDPI [%.2f, %.2f]\n",
                s.mean, s.hdpi.lo, s.hdpi.hi);
    std::printf("category before pinpointing: %s\n",
                core::to_string(result.base_categories[*node]).c_str());
    std::printf("category after pinpointing:  %s\n",
                core::to_string(result.categories[*node]).c_str());
  }
  std::printf("\npinpointing upgraded %zu AS(s):", result.upgraded.size());
  for (topology::AsId as : result.upgraded) std::printf(" %u", as);
  std::printf("\n(the heuristics cannot express 'damps some neighbors only';\n"
              " SAT has zero solutions; BeCAUSe reports it as category 4)\n");
  return 0;
}
