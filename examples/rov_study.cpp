// ROV study (§7): apply the unchanged BeCAUSe pipeline to Route Origin
// Validation. AS paths are harvested from a simulated campaign, a ROV
// deployment is planted so ~90% of paths are ROV-labeled (the paper's
// dataset property), and BeCAUSe pinpoints the filtering ASs.
//
//   $ ./example_rov_study
#include <cstdio>

#include "core/evaluate.hpp"
#include "experiment/campaign.hpp"
#include "experiment/pipeline.hpp"
#include "rov/rov.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace because;

  // Harvest realistic AS paths: run a small campaign without any RFD.
  auto config = experiment::CampaignConfig::small();
  config.seed = 7;
  config.deployment.damping_fraction = 0.0;
  config.pairs = 2;
  const auto campaign = experiment::run_campaign(config);

  std::vector<topology::AsPath> paths;
  for (const auto& p : campaign.observed) paths.push_back(p.path);
  std::printf("harvested %zu AS paths from the simulated topology\n", paths.size());

  // Plant a ROV deployment reaching ~90%% ROV-labeled paths.
  stats::Rng rng(11);
  auto rov_ases = rov::plant_rov_ases(paths, 0.9, 30, rng, 10);
  const auto bench = rov::make_rov_benchmark(paths, std::move(rov_ases));
  std::printf("planted %zu ROV ASs; %s of paths are ROV-labeled\n",
              bench.rov_ases.size(),
              util::fmt_percent(bench.rov_path_share).c_str());

  // The same inference pipeline as for RFD - no domain knowledge needed.
  auto inference_config = experiment::InferenceConfig::fast();
  inference_config.mh.samples = 1200;
  inference_config.mh.burn_in = 600;
  const auto result = experiment::run_inference(bench.dataset, inference_config);

  const auto eval =
      core::evaluate(result.dataset, result.categories, bench.rov_ases);
  util::Table table({"metric", "value"});
  table.add_row({"ROV ASs (ground truth)", std::to_string(bench.rov_ases.size())});
  table.add_row({"flagged by BeCAUSe",
                 std::to_string(result.damping_ases().size())});
  table.add_row({"precision", util::fmt_percent(eval.matrix.precision())});
  table.add_row({"recall", util::fmt_percent(eval.matrix.recall())});
  std::printf("%s", table.render("BeCAUSe on ROV (paper: 100% / 64%)").c_str());

  std::printf(
      "\nmissed ASs are typically 'hiding' behind another ROV AS - the\n"
      "identifiability limit discussed in §7.\n");

  // Part 2: the fully *measured* variant. Instead of labeling paths by a
  // known ROV list, announce valid/invalid prefix pairs through the real
  // RFC 6811 drop-invalid filters and derive the labels from what each
  // vantage point actually receives (Reuter-style methodology).
  std::printf("\n== measured ROV experiment (valid/invalid prefix pairs) ==\n");
  rov::RovMeasurementConfig mconfig;
  mconfig.origins = 4;
  mconfig.vantage_points = 30;
  const auto measurement =
      rov::run_rov_measurement(campaign.graph, bench.rov_ases, mconfig);
  std::printf("%zu measured paths, ROV share %s, label disagreements %zu\n",
              measurement.paths_total,
              util::fmt_percent(measurement.rov_path_share).c_str(),
              measurement.label_disagreements);

  if (measurement.dataset.as_count() > 0) {
    const auto measured_result =
        experiment::run_inference(measurement.dataset, inference_config);
    const auto measured_eval = core::evaluate(
        measured_result.dataset, measured_result.categories, measurement.rov_ases);
    std::printf("BeCAUSe on the measured dataset: precision %s, recall %s\n",
                util::fmt_percent(measured_eval.matrix.precision()).c_str(),
                util::fmt_percent(measured_eval.matrix.recall()).c_str());
  }
  return 0;
}
