// RFD parameter explorer: reproduces the router-side mechanics of Figure 2
// for any parameter preset and shows which beacon update intervals trigger
// each preset (the analytic backbone of Figure 12 and §6.2).
//
//   $ ./example_parameter_explorer
#include <cstdio>

#include "experiment/deployment.hpp"
#include "rfd/damper.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

/// Simulate a beacon-style W/A alternation against one damper and report
/// when suppression starts and how long the prefix stays suppressed.
void trace_preset(const because::experiment::RfdVariant& variant) {
  using namespace because;
  rfd::Damper damper(variant.params);
  const bgp::Prefix prefix{1, 24};

  sim::Time t = 0;
  sim::Time suppressed_at = -1;
  std::uint64_t generation = 0;
  for (int k = 0; k < 60; ++k) {
    const rfd::UpdateKind kind = (k % 2 == 0)
                                     ? rfd::UpdateKind::kWithdrawal
                                     : rfd::UpdateKind::kReadvertisement;
    const rfd::Outcome out = damper.on_update(prefix, kind, t);
    if (out.became_suppressed && suppressed_at < 0) suppressed_at = t;
    generation = out.generation;
    t += sim::minutes(1);
  }
  std::printf("  %-12s suppress threshold %5.0f  ", variant.name.c_str(),
              variant.params.suppress_threshold);
  if (suppressed_at < 0) {
    std::printf("never suppressed by a 1 min beacon\n");
    return;
  }
  const sim::Duration reuse = damper.time_until_reuse(prefix, t);
  std::printf("suppressed after %.0f min, releases %.1f min after burst end\n",
              sim::to_minutes(suppressed_at), sim::to_minutes(reuse));
  (void)generation;
}

}  // namespace

int main() {
  using namespace because;

  std::printf("== RFD parameter presets (Appendix B) ==\n");
  util::Table table({"preset", "withdrawal", "readv", "attr-change", "suppress",
                     "half-life (min)", "reuse", "max-suppress (min)"});
  for (const auto& v : experiment::standard_variants()) {
    const rfd::Params& p = v.params;
    table.add_row({v.name, util::fmt_double(p.withdrawal_penalty, 0),
                   util::fmt_double(p.readvertisement_penalty, 0),
                   util::fmt_double(p.attribute_change_penalty, 0),
                   util::fmt_double(p.suppress_threshold, 0),
                   util::fmt_double(sim::to_minutes(p.half_life), 0),
                   util::fmt_double(p.reuse_threshold, 0),
                   util::fmt_double(sim::to_minutes(p.max_suppress_time), 0)});
  }
  std::printf("%s\n", table.render_csv().c_str());

  std::printf("== behaviour under a 1 min beacon burst ==\n");
  for (const auto& v : experiment::standard_variants()) trace_preset(v);

  std::printf("\n== largest triggering update interval per preset ==\n");
  for (const auto& v : experiment::standard_variants()) {
    const sim::Duration trigger = v.max_triggering_interval();
    std::printf("  %-12s triggers for update intervals <= %2.0f min%s\n",
                v.name.c_str(), sim::to_minutes(trigger),
                v.vendor_default ? "   (deprecated vendor default)" : "");
  }
  std::printf(
      "\nThe drop after 5 minutes is exactly the paper's Figure 12 cliff:\n"
      "deprecated vendor defaults stop damping above a ~5 min interval,\n"
      "RFC 7454 parameters already stop above ~3 min.\n");
  return 0;
}
