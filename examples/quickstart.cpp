// Quickstart: the BeCAUSe API in ~60 lines.
//
// Builds a labeled-path dataset by hand (as if the measurement stage had
// already run), infers per-AS damping probabilities with both samplers, and
// prints mean / 95% HDPI / category per AS.
//
//   $ ./example_quickstart
#include <cstdio>

#include "core/categorize.hpp"
#include "core/hmc.hpp"
#include "core/likelihood.hpp"
#include "core/metropolis.hpp"
#include "core/prior.hpp"
#include "core/summary.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace because;

  // 1. Path measurements: AS 3356 damps; 174 and 1299 are clean.
  //    `true` marks paths that showed the RFD signature.
  labeling::PathDataset data;
  for (int i = 0; i < 10; ++i) {
    data.add_path({174, 3356}, true);
    data.add_path({1299, 3356}, true);
    data.add_path({174, 1299}, false);
    data.add_path({174, 6939}, false);
    data.add_path({1299, 6939}, false);
  }

  // 2. The likelihood model (Eq. 4-5) plus a weak Beta prior.
  const core::Likelihood likelihood(data);
  const core::Prior prior = core::Prior::beta(1.5, 1.5);

  // 3. Sample the posterior with both samplers.
  core::MetropolisConfig mh;
  mh.samples = 2000;
  mh.burn_in = 1000;
  const core::Chain mh_chain = core::run_metropolis(likelihood, prior, mh);

  core::HmcConfig hmc;
  hmc.samples = 800;
  hmc.burn_in = 200;
  const core::Chain hmc_chain = core::run_hmc(likelihood, prior, hmc);

  // 4. Summaries and Table-1 categories; the paper takes the highest flag
  //    across the two samplers.
  const auto mh_summaries = core::summarize(mh_chain, data);
  const auto hmc_summaries = core::summarize(hmc_chain, data);
  const auto categories = core::highest_all(core::categorize_all(mh_summaries),
                                            core::categorize_all(hmc_summaries));

  util::Table table({"AS", "mean p", "95% HDPI", "category"});
  for (std::size_t n = 0; n < data.as_count(); ++n) {
    const auto& s = mh_summaries[n];
    table.add_row({std::to_string(s.as), util::fmt_double(s.mean, 3),
                   "[" + util::fmt_double(s.hdpi.lo, 2) + ", " +
                       util::fmt_double(s.hdpi.hi, 2) + "]",
                   core::to_string(categories[n])});
  }
  std::printf("%s", table.render("BeCAUSe quickstart").c_str());
  std::printf("\nMH acceptance %.2f, HMC acceptance %.2f\n",
              mh_chain.acceptance_rate, hmc_chain.acceptance_rate);
  return 0;
}
