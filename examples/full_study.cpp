// The whole paper in one run: a moderately sized campaign, the complete
// BeCAUSe pipeline, and the consolidated §6-style study report.
//
//   $ ./example_full_study [seed]
#include <cstdio>
#include <cstdlib>

#include "experiment/report.hpp"

int main(int argc, char** argv) {
  using namespace because;

  experiment::CampaignConfig config;
  config.topology.tier1_count = 6;
  config.topology.transit_count = 80;
  config.topology.stub_count = 300;
  config.beacon_sites = 5;
  config.update_intervals = {sim::minutes(1)};
  config.prefixes_per_interval = 2;
  config.burst_length = sim::hours(1);
  config.break_length = sim::minutes(100);
  config.pairs = 4;
  config.vantage_points = 30;
  config.deployment.damping_fraction = 0.09;
  config.deployment.transit_weight = 3.0;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2020;

  std::printf("running the full study (seed %llu)...\n",
              static_cast<unsigned long long>(config.seed));
  const auto campaign = experiment::run_campaign(config);

  experiment::InferenceConfig inference_config;
  inference_config.mh.samples = 2000;
  inference_config.mh.burn_in = 1000;
  inference_config.hmc.samples = 500;
  inference_config.hmc.burn_in = 150;
  inference_config.prior_alpha = 1.0;
  inference_config.prior_beta = 1.5;
  inference_config.noise.false_signature = 0.05;
  inference_config.noise.missed_signature = 0.05;
  inference_config.pinpoint_noise_guard = 0.5;
  const auto inference = experiment::run_inference(
      campaign.labeled, campaign.site_set(), inference_config);

  experiment::ReportOptions options;
  options.include_scatter = false;
  std::printf("%s", experiment::render_study_report(campaign, inference, options)
                        .c_str());
  return 0;
}
