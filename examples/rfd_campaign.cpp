// Full RFD measurement campaign, end to end (the paper's §4-§6 pipeline):
// synthetic Internet topology -> planted RFD deployment -> two-phase beacons
// -> route collectors -> signature labeling -> BeCAUSe inference ->
// evaluation against the planted ground truth.
//
//   $ ./example_rfd_campaign
#include <cstdio>

#include "core/evaluate.hpp"
#include "experiment/campaign.hpp"
#include "experiment/figures.hpp"
#include "experiment/pipeline.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace because;
  using experiment::CampaignConfig;

  CampaignConfig config = CampaignConfig::small();
  config.seed = 2020;
  config.beacon_sites = 4;
  config.vantage_points = 12;
  config.pairs = 4;

  std::printf("running campaign (%zu sites, %zu VPs, %zu burst-break pairs)...\n",
              config.beacon_sites, config.vantage_points, config.pairs);
  const auto campaign = experiment::run_campaign(config);
  std::printf("  %llu simulator events, %zu recorded updates, %zu labeled paths\n",
              static_cast<unsigned long long>(campaign.events_executed),
              campaign.store.size(), campaign.labeled.size());

  std::size_t rfd_paths = 0;
  for (const auto& p : campaign.labeled)
    if (p.rfd) ++rfd_paths;
  std::printf("  %zu paths show the RFD signature (%s of labeled paths)\n\n",
              rfd_paths,
              util::fmt_percent(static_cast<double>(rfd_paths) /
                                static_cast<double>(campaign.labeled.size()))
                  .c_str());

  std::printf("running BeCAUSe inference (MH + HMC)...\n");
  auto inference_config = experiment::InferenceConfig::fast();
  inference_config.mh.samples = 1200;
  inference_config.mh.burn_in = 600;
  const auto inference = experiment::run_inference(
      campaign.labeled, campaign.site_set(), inference_config);

  const auto counts = experiment::category_counts(inference.categories);
  util::Table categories({"category", "ASs"});
  for (std::size_t c = 0; c < counts.size(); ++c)
    categories.add_row({core::to_string(static_cast<core::Category>(c + 1)),
                        std::to_string(counts[c])});
  std::printf("%s\n", categories.render("category assignment").c_str());

  const auto eval = core::evaluate(inference.dataset, inference.categories,
                                   campaign.plan.dampers());
  util::Table results({"metric", "value"});
  results.add_row({"planted dampers", std::to_string(campaign.plan.dampers().size())});
  results.add_row({"detectable dampers",
                   std::to_string(campaign.plan.detectable_dampers().size())});
  results.add_row({"flagged RFD-enabled",
                   std::to_string(inference.damping_ases().size())});
  results.add_row({"precision", util::fmt_percent(eval.matrix.precision())});
  results.add_row({"recall", util::fmt_percent(eval.matrix.recall())});
  results.add_row({"pinpoint upgrades", std::to_string(inference.upgraded.size())});
  std::printf("%s", results.render("evaluation vs planted ground truth").c_str());

  if (!eval.false_negatives.empty()) {
    std::printf("\nmissed dampers (visibility limits, §6.1):");
    for (topology::AsId as : eval.false_negatives) std::printf(" %u", as);
    std::printf("\n");
  }
  return 0;
}
