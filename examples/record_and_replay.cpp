// Record a campaign's collector data to an MRT-style dump, reload it, and
// re-run the labeling offline - the workflow the paper's published
// artifacts support (analyse once-collected BGP dumps without touching the
// measurement infrastructure again).
//
//   $ ./example_record_and_replay [dump-path]
#include <cstdio>
#include <string>

#include "collector/mrt.hpp"
#include "experiment/campaign.hpp"
#include "labeling/signature.hpp"

int main(int argc, char** argv) {
  using namespace because;

  const std::string dump_path =
      argc > 1 ? argv[1] : "/tmp/because_campaign.becmrt";

  // 1. Run a small campaign and persist its collector data.
  auto config = experiment::CampaignConfig::small();
  config.seed = 31;
  const auto campaign = experiment::run_campaign(config);
  collector::save_mrt_file(dump_path, campaign.store);
  std::printf("recorded %zu updates from %zu vantage points to %s\n",
              campaign.store.size(), campaign.store.vantage_points().size(),
              dump_path.c_str());

  // 2. Reload and relabel offline.
  const collector::UpdateStore loaded = collector::load_mrt_file(dump_path);
  std::vector<labeling::LabeledPath> relabeled;
  for (const auto& beacon : campaign.beacons) {
    auto paths = labeling::label_paths(loaded, beacon.prefix, beacon.schedule,
                                       config.signature);
    relabeled.insert(relabeled.end(), paths.begin(), paths.end());
  }

  // 3. The offline analysis reproduces the online one exactly.
  bool identical = relabeled.size() == campaign.labeled.size();
  std::size_t rfd_paths = 0;
  for (std::size_t i = 0; identical && i < relabeled.size(); ++i) {
    identical = relabeled[i].path == campaign.labeled[i].path &&
                relabeled[i].rfd == campaign.labeled[i].rfd;
  }
  for (const auto& p : relabeled)
    if (p.rfd) ++rfd_paths;

  std::printf("reloaded %zu updates; relabeled %zu paths (%zu RFD)\n",
              loaded.size(), relabeled.size(), rfd_paths);
  std::printf("offline labels identical to the live campaign: %s\n",
              identical ? "yes" : "NO (bug!)");

  // 4. Offline analyses can now vary freely - e.g. a stricter signature.
  labeling::SignatureConfig strict = config.signature;
  strict.pair_match_fraction = 1.0;
  std::size_t strict_rfd = 0;
  for (const auto& beacon : campaign.beacons)
    for (const auto& p : labeling::label_paths(loaded, beacon.prefix,
                                               beacon.schedule, strict))
      if (p.rfd) ++strict_rfd;
  std::printf("with a 100%% pair-match requirement: %zu RFD paths\n", strict_rfd);
  return identical ? 0 : 1;
}
