#include <gtest/gtest.h>

#include "experiment/parameter_inference.hpp"

namespace because::experiment {
namespace {

labeling::LabeledPath damped_path(topology::AsPath path,
                                  std::vector<double> rdeltas,
                                  std::uint32_t prefix = 1) {
  labeling::LabeledPath p;
  p.prefix = bgp::Prefix{prefix, 24};
  p.path = std::move(path);
  p.rfd = true;
  p.rdeltas_minutes = std::move(rdeltas);
  return p;
}

TEST(AttributeRdeltas, UniqueFlaggedAsOwnsTheSamples) {
  const std::vector<labeling::LabeledPath> paths{
      damped_path({100, 50, 10}, {58.0, 59.0}),
      damped_path({200, 50, 10}, {57.5}),
  };
  const auto attributed = attribute_rdeltas(paths, {50});
  ASSERT_EQ(attributed.size(), 1u);
  EXPECT_EQ(attributed[0].as, 50u);
  EXPECT_EQ(attributed[0].rdeltas_minutes.size(), 3u);
}

TEST(AttributeRdeltas, AmbiguousPathsSkipped) {
  const std::vector<labeling::LabeledPath> paths{
      damped_path({100, 50, 60, 10}, {58.0}),  // two flagged ASs
      damped_path({100, 70, 10}, {30.0}),      // no flagged AS
  };
  const auto attributed = attribute_rdeltas(paths, {50, 60});
  EXPECT_TRUE(attributed.empty());
}

TEST(AttributeRdeltas, CleanPathsIgnored) {
  std::vector<labeling::LabeledPath> paths{damped_path({100, 50}, {58.0})};
  paths.push_back(paths[0]);
  paths[1].rfd = false;
  const auto attributed = attribute_rdeltas(paths, {50});
  ASSERT_EQ(attributed.size(), 1u);
  EXPECT_EQ(attributed[0].rdeltas_minutes.size(), 1u);
}

TEST(InferParameters, SnapsToCanonicalGrid) {
  std::vector<AsRdeltas> rdeltas;
  rdeltas.push_back({50, {57.0, 58.5, 59.0, 58.0}});   // ~60
  rdeltas.push_back({60, {28.0, 29.5, 30.5}});          // ~30
  rdeltas.push_back({70, {9.0, 9.5, 8.7}});             // ~10
  const auto estimates = infer_parameters(rdeltas);
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_DOUBLE_EQ(estimates[0].max_suppress_minutes, 60.0);
  EXPECT_TRUE(estimates[0].snapped);
  EXPECT_EQ(estimates[0].preset, "cisco-60/juniper-60");
  EXPECT_TRUE(estimates[0].vendor_default);
  EXPECT_DOUBLE_EQ(estimates[1].max_suppress_minutes, 30.0);
  EXPECT_EQ(estimates[1].preset, "cisco-30");
  EXPECT_FALSE(estimates[1].vendor_default);
  EXPECT_DOUBLE_EQ(estimates[2].max_suppress_minutes, 10.0);
  EXPECT_EQ(estimates[2].preset, "cisco-10");
}

TEST(InferParameters, TriggeringIntervalDisambiguatesRfc7454) {
  std::vector<AsRdeltas> rdeltas;
  rdeltas.push_back({50, {58.0, 59.0, 57.5}});
  rdeltas.push_back({60, {58.0, 59.0, 57.5}});
  std::unordered_map<topology::AsId, sim::Duration> triggering{
      {50, sim::minutes(5)},  // deprecated defaults still trigger at 5 min
      {60, sim::minutes(2)},  // recommended parameters stop above ~3 min
  };
  const auto estimates = infer_parameters(rdeltas, triggering);
  ASSERT_EQ(estimates.size(), 2u);
  EXPECT_EQ(estimates[0].preset, "cisco-60/juniper-60");
  EXPECT_TRUE(estimates[0].vendor_default);
  EXPECT_EQ(estimates[1].preset, "rfc7454-60");
  EXPECT_FALSE(estimates[1].vendor_default);
}

TEST(InferParameters, UnsnappedIsUnknown) {
  std::vector<AsRdeltas> rdeltas;
  rdeltas.push_back({50, {43.0, 44.0, 45.0}});  // no canonical value nearby
  const auto estimates = infer_parameters(rdeltas);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_FALSE(estimates[0].snapped);
  EXPECT_EQ(estimates[0].preset, "unknown");
  EXPECT_NEAR(estimates[0].max_suppress_minutes, 44.0, 0.01);
}

TEST(InferParameters, MinSamplesEnforced) {
  std::vector<AsRdeltas> rdeltas;
  rdeltas.push_back({50, {58.0}});  // too few samples
  EXPECT_TRUE(infer_parameters(rdeltas).empty());
}

TEST(InferParameters, VendorDefaultShare) {
  std::vector<ParameterEstimate> estimates(5);
  estimates[0].vendor_default = true;
  estimates[1].vendor_default = true;
  estimates[2].vendor_default = true;
  EXPECT_DOUBLE_EQ(vendor_default_share(estimates), 0.6);
  EXPECT_DOUBLE_EQ(vendor_default_share({}), 0.0);
}

}  // namespace
}  // namespace because::experiment
