#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "bgp/router.hpp"
#include "sim/event_queue.hpp"

namespace because::bgp {
namespace {

using topology::AsId;
using topology::Relation;

const Prefix kPrefix{1, 24};

/// Minimal harness wiring Router instances directly (no Network), with a
/// fixed link delay and no MRAI unless requested.
struct Net {
  sim::EventQueue queue;
  topology::PathTable paths;
  std::map<AsId, std::unique_ptr<Router>> routers;
  sim::Duration delay = sim::milliseconds(10);
  sim::Duration mrai = 0;

  Router& add(AsId id) {
    auto [it, _] =
        routers.emplace(id, std::make_unique<Router>(id, queue, paths));
    return *it->second;
  }

  /// Bidirectional link; `rel_ab` = relationship of b as seen from a.
  void link(AsId a, AsId b, Relation rel_ab) {
    connect_one(a, b, rel_ab);
    connect_one(b, a, topology::reverse(rel_ab));
  }

  void connect_one(AsId from, AsId to, Relation rel) {
    Router* target = routers.at(to).get();
    routers.at(from)->connect(to, rel, mrai, false,
                              [this, target, from](const Update& u) {
                                queue.schedule_in(delay, [target, from, u] {
                                  target->receive(from, u);
                                });
                              });
  }
};

TEST(Router, OriginationPropagatesOverChain) {
  Net net;
  Router& a = net.add(1);
  net.add(2);
  Router& c = net.add(3);
  net.link(1, 2, Relation::kProvider);  // 2 is provider of 1
  net.link(2, 3, Relation::kProvider);  // 3 is provider of 2
  a.originate(kPrefix, 0);
  net.queue.run();

  const Selected* sel = c.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(net.paths.to_path(sel->route.path), (topology::AsPath{2, 1}));
  EXPECT_EQ(sel->route.beacon_timestamp, 0);
}

TEST(Router, WithdrawalPropagates) {
  Net net;
  Router& a = net.add(1);
  net.add(2);
  Router& c = net.add(3);
  net.link(1, 2, Relation::kProvider);
  net.link(2, 3, Relation::kProvider);
  a.originate(kPrefix, 0);
  net.queue.run();
  ASSERT_NE(c.loc_rib().find(kPrefix), nullptr);

  a.withdraw_origin(kPrefix);
  net.queue.run();
  EXPECT_EQ(c.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, LoopPreventionDropsOwnAs) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  a.originate(kPrefix, 0);
  net.queue.run();
  // 2 must not have learned its own announcement back; 1 never re-receives
  // its own path (2 does not export back to the source), but inject one
  // manually to confirm the loop check.
  Update looped;
  looped.type = UpdateType::kAnnouncement;
  looped.prefix = Prefix{9, 24};
  looped.path = net.paths.intern(topology::AsPath{1, 7, 2});
  b.receive(1, looped);
  EXPECT_EQ(b.loc_rib().find(Prefix{9, 24}), nullptr);
}

TEST(Router, ValleyFreeExportPeerRouteNotToPeer) {
  // 1 originates; 2 learns from customer 1; 3 peers with 2; 4 peers with 3.
  // 3 must not export the peer-learned route to its peer 4.
  Net net;
  Router& a = net.add(1);
  net.add(2);
  net.add(3);
  Router& d = net.add(4);
  net.link(1, 2, Relation::kProvider);
  net.link(2, 3, Relation::kPeer);
  net.link(3, 4, Relation::kPeer);
  a.originate(kPrefix, 0);
  net.queue.run();
  EXPECT_NE(net.routers.at(3)->loc_rib().find(kPrefix), nullptr);
  EXPECT_EQ(d.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, ValleyFreeExportProviderRouteOnlyToCustomers) {
  // 2 is provider of 1 and customer of 3; 3 is peer of 4.
  // 1 learns the route from its provider 2 only if 2 learned it from... here
  // 3 originates: 2 learns from provider 3, exports to customer 1 but not to
  // its other provider 5.
  Net net;
  net.add(1);
  net.add(2);
  Router& c = net.add(3);
  Router& e = net.add(5);
  net.link(2, 1, Relation::kCustomer);   // 1 is customer of 2
  net.link(2, 3, Relation::kProvider);   // 3 is provider of 2
  net.link(2, 5, Relation::kProvider);   // 5 is another provider of 2
  c.originate(kPrefix, 0);
  net.queue.run();
  EXPECT_NE(net.routers.at(1)->loc_rib().find(kPrefix), nullptr);
  EXPECT_EQ(e.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, PrefersCustomerRoute) {
  // 4 can reach origin 1 via customer 2 or provider 3; it must pick 2.
  Net net;
  Router& origin = net.add(1);
  net.add(2);
  net.add(3);
  Router& d = net.add(4);
  net.link(1, 2, Relation::kProvider);
  net.link(1, 3, Relation::kProvider);
  net.link(4, 2, Relation::kCustomer);  // 2 is customer of 4
  net.link(4, 3, Relation::kProvider);  // 3 is provider of 4
  origin.originate(kPrefix, 0);
  net.queue.run();
  const Selected* sel = d.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->neighbor, std::optional<AsId>(2));
}

TEST(Router, PathHuntingFailsOverToAlternative) {
  // Diamond: origin 1 under 2 and 3, observer 4 over both. 2 damps updates
  // from 1; once 2 suppresses the prefix, 4 must fail over to the branch
  // through 3 (path hunting made the alternative visible).
  Net net;
  Router& origin = net.add(1);
  Router& b = net.add(2);
  net.add(3);
  Router& d = net.add(4);
  net.link(1, 2, Relation::kProvider);
  net.link(1, 3, Relation::kProvider);
  net.link(2, 4, Relation::kProvider);
  net.link(3, 4, Relation::kProvider);
  DampingRule rule;
  rule.params = rfd::cisco_defaults();
  b.add_damping_rule(rule);

  sim::Time t = 0;
  origin.originate(kPrefix, t);
  for (int i = 0; i < 6; ++i) {
    t += sim::minutes(1);
    net.queue.schedule_at(t, [&origin] { origin.withdraw_origin(kPrefix); });
    t += sim::minutes(1);
    net.queue.schedule_at(t, [&origin, t] { origin.originate(kPrefix, t); });
  }
  net.queue.run_until(t + sim::minutes(1));

  ASSERT_TRUE(b.damping_suppressed(1, kPrefix));
  const Selected* sel = d.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);  // alternative branch keeps 4 connected
  EXPECT_EQ(net.paths.to_path(sel->route.path), (topology::AsPath{3, 1}));

  // After the release, 4 may switch back; either way it stays connected and
  // the suppressed branch is usable again.
  net.queue.run();
  EXPECT_FALSE(b.damping_suppressed(1, kPrefix));
  ASSERT_NE(d.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, RfdSuppressionWithdrawsDownstream) {
  // 1 - 2 - 3 chain, 2 damps updates from 1 (Cisco defaults). Flapping the
  // prefix fast enough gets it suppressed at 2 and withdrawn at 3.
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  Router& c = net.add(3);
  net.link(1, 2, Relation::kProvider);
  net.link(2, 3, Relation::kProvider);
  DampingRule rule;
  rule.params = rfd::cisco_defaults();
  b.add_damping_rule(rule);

  sim::Time t = 0;
  a.originate(kPrefix, t);
  for (int i = 0; i < 6; ++i) {
    t += sim::minutes(1);
    net.queue.schedule_at(t, [&a] { a.withdraw_origin(kPrefix); });
    t += sim::minutes(1);
    net.queue.schedule_at(t, [&a, t] { a.originate(kPrefix, t); });
  }
  net.queue.run_until(t + sim::minutes(1));

  EXPECT_TRUE(b.damping_suppressed(1, kPrefix));
  EXPECT_GT(b.damping_penalty(1, kPrefix), 750.0);
  // The last flap ended announced, but 2 suppresses it: 3 has no route.
  EXPECT_EQ(c.loc_rib().find(kPrefix), nullptr);

  // After the penalty decays, the stored announcement is released and 3
  // learns the route again: the RFD signature's re-advertisement.
  net.queue.run();
  EXPECT_FALSE(b.damping_suppressed(1, kPrefix));
  EXPECT_NE(c.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, SeenMemoryDistinguishesCollidingKeys) {
  // Regression: the announcement memory used to hash (neighbor, prefix) into
  // a 64-bit digest, (neighbor << 32) ^ (prefix.id << 8) ^ length, under
  // which (neighbor 2, pfx0/24) and (neighbor 3, pfx16777216/24) collide at
  // 0x200000018. With the parameters below (re-advertisements suppress
  // instantly, initial advertisements are free), the collision misclassified
  // neighbor 3's *first* announcement as a re-advertisement and damped it.
  // The RIB now keeps exact per-(neighbor, prefix) state.
  Net net;
  net.add(2);
  net.add(3);
  Router& b = net.add(5);
  net.link(5, 2, Relation::kCustomer);
  net.link(5, 3, Relation::kCustomer);
  DampingRule rule;
  rule.params.readvertisement_penalty = 1000.0;
  rule.params.suppress_threshold = 900.0;
  rule.params.reuse_threshold = 750.0;
  b.add_damping_rule(rule);

  const Prefix pa{0, 24};
  const Prefix pb{0x1000000, 24};
  Update ua;
  ua.type = UpdateType::kAnnouncement;
  ua.prefix = pa;
  ua.path = net.paths.intern(topology::AsPath{2});
  ua.beacon_timestamp = 0;
  Update ub = ua;
  ub.prefix = pb;
  ub.path = net.paths.intern(topology::AsPath{3});

  b.receive(2, ua);
  b.receive(3, ub);  // first ever announcement of pb: must not be damped
  net.queue.run();

  EXPECT_FALSE(b.damping_suppressed(3, pb));
  const Selected* sel = b.loc_rib().find(pb);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->neighbor, std::optional<AsId>(3));

  // The exact memory still classifies true re-advertisements: withdraw, then
  // announce again from the same neighbor, and the penalty bites.
  Update wb;
  wb.type = UpdateType::kWithdrawal;
  wb.prefix = pb;
  b.receive(3, wb);
  b.receive(3, ub);
  EXPECT_TRUE(b.damping_suppressed(3, pb));
}

TEST(Router, DampingRuleScopes) {
  DampingRule rule;
  rule.params = rfd::cisco_defaults();
  rule.relation_scope = Relation::kCustomer;
  EXPECT_TRUE(rule.matches(Relation::kCustomer, 7, kPrefix));
  EXPECT_FALSE(rule.matches(Relation::kProvider, 7, kPrefix));

  DampingRule exempt;
  exempt.params = rfd::cisco_defaults();
  exempt.exempt_neighbors = {7};
  EXPECT_FALSE(exempt.matches(Relation::kPeer, 7, kPrefix));
  EXPECT_TRUE(exempt.matches(Relation::kPeer, 8, kPrefix));

  DampingRule only;
  only.params = rfd::cisco_defaults();
  only.only_neighbors = {7};
  EXPECT_TRUE(only.matches(Relation::kPeer, 7, kPrefix));
  EXPECT_FALSE(only.matches(Relation::kPeer, 8, kPrefix));

  DampingRule length;
  length.params = rfd::cisco_defaults();
  length.min_prefix_length = 25;
  EXPECT_FALSE(length.matches(Relation::kPeer, 7, kPrefix));  // /24
  EXPECT_TRUE(length.matches(Relation::kPeer, 7, Prefix{1, 25}));
}

TEST(Router, ExemptNeighborNotDamped) {
  // 2 damps everyone except neighbor 1: flaps from 1 pass through.
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  Router& c = net.add(3);
  net.link(1, 2, Relation::kProvider);
  net.link(2, 3, Relation::kProvider);
  DampingRule rule;
  rule.params = rfd::cisco_defaults();
  rule.exempt_neighbors = {1};
  b.add_damping_rule(rule);

  sim::Time t = 0;
  a.originate(kPrefix, t);
  for (int i = 0; i < 8; ++i) {
    t += sim::minutes(1);
    net.queue.schedule_at(t, [&a] { a.withdraw_origin(kPrefix); });
    t += sim::minutes(1);
    net.queue.schedule_at(t, [&a, t] { a.originate(kPrefix, t); });
  }
  net.queue.run();
  EXPECT_FALSE(b.damping_suppressed(1, kPrefix));
  EXPECT_NE(c.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, ExportTapSeesFullFeed) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  std::vector<Update> tapped;
  b.attach_export_tap([&](const Update& u) { tapped.push_back(u); });
  a.originate(kPrefix, 5);
  net.queue.run();
  ASSERT_FALSE(tapped.empty());
  EXPECT_TRUE(tapped.back().is_announcement());
  EXPECT_EQ(net.paths.to_path(tapped.back().path), (topology::AsPath{2, 1}));
  EXPECT_EQ(tapped.back().beacon_timestamp, 5);
}

TEST(Router, ExportTapReplaysExistingTable) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  a.originate(kPrefix, 5);
  net.queue.run();

  std::vector<Update> tapped;
  b.attach_export_tap([&](const Update& u) { tapped.push_back(u); });
  ASSERT_EQ(tapped.size(), 1u);  // replayed on attach
  EXPECT_TRUE(tapped[0].is_announcement());
}

TEST(Router, SessionResetReAdvertises) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  a.originate(kPrefix, 0);
  net.queue.run();
  ASSERT_NE(b.loc_rib().find(kPrefix), nullptr);

  b.reset_session(1);
  EXPECT_EQ(b.loc_rib().find(kPrefix), nullptr);  // learned state dropped
  a.reset_session(2);                              // other side resends
  net.queue.run();
  EXPECT_NE(b.loc_rib().find(kPrefix), nullptr);
}

TEST(Router, RejectsDuplicateAndSelfSessions) {
  sim::EventQueue queue;
  topology::PathTable paths;
  Router r(1, queue, paths);
  EXPECT_THROW(r.connect(1, Relation::kPeer, 0, false, [](const Update&) {}),
               std::invalid_argument);
  r.connect(2, Relation::kPeer, 0, false, [](const Update&) {});
  EXPECT_THROW(r.connect(2, Relation::kPeer, 0, false, [](const Update&) {}),
               std::invalid_argument);
}

TEST(Router, SpuriousWithdrawalIgnored) {
  Net net;
  net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  Update w;
  w.type = UpdateType::kWithdrawal;
  w.prefix = kPrefix;
  b.receive(1, w);  // never announced
  EXPECT_EQ(b.loc_rib().find(kPrefix), nullptr);
  EXPECT_EQ(b.updates_received(), 1u);
}

TEST(Router, ExportPrependingAddsOwnAs) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  Router& c = net.add(3);
  net.link(1, 2, Relation::kProvider);
  net.link(2, 3, Relation::kProvider);
  b.set_export_prepending(3, 2);  // 2 exports to 3 with 2 extra hops
  a.originate(kPrefix, 0);
  net.queue.run();
  const Selected* sel = c.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(net.paths.to_path(sel->route.path),
            (topology::AsPath{2, 2, 2, 1}));
}

TEST(Router, PrependingInfluencesPathSelection) {
  // Diamond: 4 reaches origin 1 via 2 or 3 (equal length). 2 prepends, so
  // 4 must prefer the branch through 3 despite 2's lower tie-break id.
  Net net;
  Router& origin = net.add(1);
  Router& b = net.add(2);
  net.add(3);
  Router& d = net.add(4);
  net.link(1, 2, Relation::kProvider);
  net.link(1, 3, Relation::kProvider);
  net.link(2, 4, Relation::kProvider);
  net.link(3, 4, Relation::kProvider);
  b.set_export_prepending(4, 3);
  origin.originate(kPrefix, 0);
  net.queue.run();
  const Selected* sel = d.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(net.paths.to_path(sel->route.path), (topology::AsPath{3, 1}));
}

TEST(Router, PrependingValidationAndRemoval) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  EXPECT_THROW(a.set_export_prepending(99, 1), std::invalid_argument);
  a.set_export_prepending(2, 1);
  a.set_export_prepending(2, 0);  // removal
  a.originate(kPrefix, 0);
  net.queue.run();
  const Selected* sel = b.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(net.paths.to_path(sel->route.path), (topology::AsPath{1}));
}

TEST(Router, ReOriginationRefreshesTimestamp) {
  Net net;
  Router& a = net.add(1);
  Router& b = net.add(2);
  net.link(1, 2, Relation::kProvider);
  a.originate(kPrefix, 1);
  net.queue.run();
  a.originate(kPrefix, 2);
  net.queue.run();
  const Selected* sel = b.loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->route.beacon_timestamp, 2);
}

}  // namespace
}  // namespace because::bgp
