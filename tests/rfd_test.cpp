#include <gtest/gtest.h>

#include <cmath>

#include "rfd/damper.hpp"
#include "rfd/params.hpp"
#include "rfd/penalty.hpp"

namespace because::rfd {
namespace {

const bgp::Prefix kPrefix{1, 24};

// ---------------------------------------------------------------- params

TEST(Params, AppendixBDefaults) {
  const Params cisco = cisco_defaults();
  EXPECT_DOUBLE_EQ(cisco.withdrawal_penalty, 1000.0);
  EXPECT_DOUBLE_EQ(cisco.readvertisement_penalty, 0.0);
  EXPECT_DOUBLE_EQ(cisco.attribute_change_penalty, 500.0);
  EXPECT_DOUBLE_EQ(cisco.suppress_threshold, 2000.0);
  EXPECT_EQ(cisco.half_life, sim::minutes(15));
  EXPECT_DOUBLE_EQ(cisco.reuse_threshold, 750.0);
  EXPECT_EQ(cisco.max_suppress_time, sim::minutes(60));

  const Params juniper = juniper_defaults();
  EXPECT_DOUBLE_EQ(juniper.readvertisement_penalty, 1000.0);
  EXPECT_DOUBLE_EQ(juniper.suppress_threshold, 3000.0);

  const Params ripe = rfc7454_recommended();
  EXPECT_DOUBLE_EQ(ripe.suppress_threshold, 6000.0);
}

TEST(Params, PresetsValidate) {
  EXPECT_NO_THROW(cisco_defaults().validate());
  EXPECT_NO_THROW(juniper_defaults().validate());
  EXPECT_NO_THROW(rfc7454_recommended().validate());
}

TEST(Params, PresetNames) {
  EXPECT_EQ(preset_name(cisco_defaults()), "cisco");
  EXPECT_EQ(preset_name(juniper_defaults()), "juniper");
  EXPECT_EQ(preset_name(rfc7454_recommended()), "rfc7454");
  Params p = cisco_defaults();
  p.suppress_threshold = 2500.0;
  EXPECT_EQ(preset_name(p), "custom");
}

TEST(Params, CeilingFormula) {
  const Params p = cisco_defaults();
  // reuse * 2^(60/15) = 750 * 16 = 12000.
  EXPECT_NEAR(p.ceiling(), 12000.0, 1e-9);
}

TEST(Params, ValidateRejectsInconsistent) {
  Params p = cisco_defaults();
  p.reuse_threshold = 3000.0;  // above suppress
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = cisco_defaults();
  p.half_life = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = cisco_defaults();
  p.withdrawal_penalty = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  // 10 min max-suppress with 15 min half-life: ceiling 750*2^(2/3) < 2000.
  p = cisco_defaults();
  p.max_suppress_time = sim::minutes(10);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- penalty

TEST(Penalty, HalfLifeDecay) {
  const Params p = cisco_defaults();
  PenaltyState state;
  state.apply(p, UpdateKind::kWithdrawal, 0);
  EXPECT_NEAR(state.value_at(p, sim::minutes(15)), 500.0, 1e-9);
  EXPECT_NEAR(state.value_at(p, sim::minutes(30)), 250.0, 1e-9);
}

TEST(Penalty, AccumulatesAcrossUpdates) {
  const Params p = juniper_defaults();
  PenaltyState state;
  state.apply(p, UpdateKind::kWithdrawal, 0);
  const double v = state.apply(p, UpdateKind::kReadvertisement, sim::minutes(15));
  EXPECT_NEAR(v, 500.0 + 1000.0, 1e-9);
}

TEST(Penalty, InitialAdvertisementIsFree) {
  const Params p = juniper_defaults();
  PenaltyState state;
  EXPECT_DOUBLE_EQ(state.apply(p, UpdateKind::kInitialAdvertisement, 0), 0.0);
}

TEST(Penalty, AttributeChangePenalty) {
  const Params p = cisco_defaults();
  PenaltyState state;
  EXPECT_NEAR(state.apply(p, UpdateKind::kAttributeChange, 0), 500.0, 1e-9);
}

TEST(Penalty, ClampedAtCeiling) {
  const Params p = cisco_defaults();
  PenaltyState state;
  for (int i = 0; i < 100; ++i)
    state.apply(p, UpdateKind::kWithdrawal, sim::seconds(i));
  EXPECT_LE(state.value_at(p, sim::seconds(100)), p.ceiling() + 1e-9);
}

TEST(Penalty, TimeUntilReuse) {
  const Params p = cisco_defaults();
  PenaltyState state;
  // Two quick withdrawals: penalty ~2000; reuse at 750 needs
  // log2(2000/750) ~ 1.415 half-lives ~ 21.2 minutes.
  state.apply(p, UpdateKind::kWithdrawal, 0);
  state.apply(p, UpdateKind::kWithdrawal, 1);
  const sim::Duration d = state.time_until_reuse(p, 1);
  EXPECT_NEAR(sim::to_minutes(d), 15.0 * std::log2(2000.0 / 750.0), 0.1);
}

TEST(Penalty, TimeUntilReuseZeroWhenBelow) {
  const Params p = cisco_defaults();
  PenaltyState state;
  state.apply(p, UpdateKind::kAttributeChange, 0);  // 500 < 750
  EXPECT_EQ(state.time_until_reuse(p, 0), 0);
}

TEST(Penalty, GenerationBumpsOnApply) {
  const Params p = cisco_defaults();
  PenaltyState state;
  const auto g0 = state.generation();
  state.apply(p, UpdateKind::kWithdrawal, 0);
  EXPECT_GT(state.generation(), g0);
}

TEST(Penalty, MaxSuppressTimeBoundsSuppression) {
  // At the ceiling, decay to the reuse threshold takes exactly
  // max_suppress_time.
  const Params p = cisco_defaults();
  PenaltyState state;
  for (int i = 0; i < 200; ++i)
    state.apply(p, UpdateKind::kWithdrawal, sim::seconds(i));
  const sim::Duration d = state.time_until_reuse(p, sim::seconds(200));
  EXPECT_NEAR(sim::to_minutes(d), 60.0, 0.5);
}

// ---------------------------------------------------------------- damper

TEST(Damper, SuppressesWhenThresholdCrossed) {
  Damper damper(cisco_defaults());
  sim::Time t = 0;
  bool suppressed = false;
  // Withdrawals every 2 simulated minutes add 1000 each with little decay.
  for (int i = 0; i < 5 && !suppressed; ++i) {
    const Outcome out = damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
    suppressed = out.suppressed;
    if (out.became_suppressed) {
      EXPECT_TRUE(out.suppressed);
    }
    t += sim::minutes(2);
  }
  EXPECT_TRUE(suppressed);
  EXPECT_TRUE(damper.is_suppressed(kPrefix));
}

TEST(Damper, CiscoNeverSuppressesOnSlowFlaps) {
  // Withdrawals spaced 32 minutes: the steady-state penalty stays below the
  // 2000 suppress threshold (limit = 1000 / (1 - 2^(-32/15)) ~ 1298).
  Damper damper(cisco_defaults());
  sim::Time t = 0;
  for (int i = 0; i < 50; ++i) {
    const Outcome out = damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
    EXPECT_FALSE(out.suppressed);
    t += sim::minutes(32);
  }
}

TEST(Damper, TryReleaseRespectsGeneration) {
  Damper damper(cisco_defaults());
  Outcome out;
  sim::Time t = 0;
  for (int i = 0; i < 4; ++i) {
    out = damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
    t += sim::minutes(1);
  }
  ASSERT_TRUE(out.suppressed);
  const auto stale_generation = out.generation;

  // Another update supersedes the scheduled release.
  out = damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
  const sim::Time much_later = t + sim::hours(3);
  EXPECT_FALSE(damper.try_release(kPrefix, stale_generation, much_later));
  EXPECT_TRUE(damper.try_release(kPrefix, out.generation, much_later));
  EXPECT_FALSE(damper.is_suppressed(kPrefix));
}

TEST(Damper, TryReleaseRefusesEarly) {
  Damper damper(cisco_defaults());
  Outcome out;
  sim::Time t = 0;
  for (int i = 0; i < 4; ++i) {
    out = damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
    t += sim::minutes(1);
  }
  ASSERT_TRUE(out.suppressed);
  EXPECT_FALSE(damper.try_release(kPrefix, out.generation, t));  // too early
  EXPECT_TRUE(damper.is_suppressed(kPrefix));
}

TEST(Damper, UnknownPrefixQueries) {
  Damper damper(cisco_defaults());
  EXPECT_FALSE(damper.is_suppressed(kPrefix));
  EXPECT_DOUBLE_EQ(damper.penalty(kPrefix, 0), 0.0);
  EXPECT_EQ(damper.time_until_reuse(kPrefix, 0), 0);
  EXPECT_FALSE(damper.try_release(kPrefix, 0, 0));
}

TEST(Damper, IndependentPrefixes) {
  Damper damper(cisco_defaults());
  const bgp::Prefix other{2, 24};
  sim::Time t = 0;
  for (int i = 0; i < 4; ++i) {
    damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
    t += sim::minutes(1);
  }
  EXPECT_TRUE(damper.is_suppressed(kPrefix));
  EXPECT_FALSE(damper.is_suppressed(other));
  EXPECT_EQ(damper.tracked_prefixes(), 1u);
}

TEST(Damper, RejectsInvalidParams) {
  Params p = cisco_defaults();
  p.reuse_threshold = 5000.0;
  EXPECT_THROW(Damper{p}, std::invalid_argument);
}

TEST(Damper, ReleaseOnUpdateWhenDecayed) {
  // A suppressed prefix whose penalty fully decayed is released by the next
  // update itself (no timer needed).
  Damper damper(cisco_defaults());
  sim::Time t = 0;
  Outcome out;
  for (int i = 0; i < 4; ++i) {
    out = damper.on_update(kPrefix, UpdateKind::kWithdrawal, t);
    t += sim::minutes(1);
  }
  ASSERT_TRUE(out.suppressed);
  // Hours later the penalty has decayed to ~0; a readvertisement (Cisco
  // penalty 0) arrives and the route is immediately usable.
  out = damper.on_update(kPrefix, UpdateKind::kReadvertisement, t + sim::hours(6));
  EXPECT_FALSE(out.suppressed);
}

// Parameterised sweep: every standard preset eventually suppresses under a
// fast flap and eventually releases during silence.
class PresetSweep : public ::testing::TestWithParam<Params> {};

TEST_P(PresetSweep, SuppressThenRelease) {
  Damper damper(GetParam());
  const Params& p = damper.params();
  sim::Time t = 0;
  bool suppressed = false;
  Outcome out;
  for (int i = 0; i < 240; ++i) {
    const UpdateKind kind = (i % 2 == 0) ? UpdateKind::kWithdrawal
                                         : UpdateKind::kReadvertisement;
    out = damper.on_update(kPrefix, kind, t);
    if (out.suppressed) {
      suppressed = true;
      break;
    }
    t += sim::minutes(1);
  }
  ASSERT_TRUE(suppressed);

  const sim::Duration until = damper.time_until_reuse(kPrefix, t);
  EXPECT_GT(until, 0);
  EXPECT_LE(until, p.max_suppress_time + sim::seconds(1));
  EXPECT_TRUE(damper.try_release(kPrefix, out.generation, t + until));
}

INSTANTIATE_TEST_SUITE_P(Presets, PresetSweep,
                         ::testing::Values(cisco_defaults(), juniper_defaults(),
                                           rfc7454_recommended()));

// Penalty decay is monotone between updates for every preset.
class DecaySweep : public ::testing::TestWithParam<Params> {};

TEST_P(DecaySweep, MonotoneDecay) {
  PenaltyState state;
  const Params& p = GetParam();
  state.apply(p, UpdateKind::kWithdrawal, 0);
  state.apply(p, UpdateKind::kWithdrawal, sim::minutes(1));
  double prev = state.value_at(p, sim::minutes(1));
  for (int m = 2; m < 120; m += 3) {
    const double v = state.value_at(p, sim::minutes(m));
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, 0.0);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, DecaySweep,
                         ::testing::Values(cisco_defaults(), juniper_defaults(),
                                           rfc7454_recommended()));

}  // namespace
}  // namespace because::rfd
