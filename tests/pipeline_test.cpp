#include <gtest/gtest.h>

#include "experiment/pipeline.hpp"

namespace because::experiment {
namespace {

labeling::LabeledPath make_labeled(topology::AsPath path, bool rfd) {
  // Each synthetic measurement gets its own prefix: they model independent
  // beacon experiments, which the pipeline's deduplication must not merge.
  static std::uint32_t next_prefix = 1;
  labeling::LabeledPath p;
  p.vp = 0;
  p.prefix = bgp::Prefix{next_prefix++, 24};
  p.path = std::move(path);
  p.rfd = rfd;
  return p;
}

std::vector<labeling::LabeledPath> planted_paths() {
  std::vector<labeling::LabeledPath> out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(make_labeled({10, 50, 900}, true));   // 50 damps
    out.push_back(make_labeled({11, 50, 900}, true));
    out.push_back(make_labeled({10, 60, 900}, false));
    out.push_back(make_labeled({11, 60, 900}, false));
    out.push_back(make_labeled({10, 11, 900}, false));
  }
  return out;
}

TEST(Pipeline, IdentifiesPlantedDamper) {
  const auto result =
      run_inference(planted_paths(), {900}, InferenceConfig::fast());
  EXPECT_TRUE(core::is_damping(result.category_of(50)));
  EXPECT_FALSE(core::is_damping(result.category_of(10)));
  EXPECT_FALSE(core::is_damping(result.category_of(60)));
  const auto damping = result.damping_ases();
  EXPECT_TRUE(damping.count(50));
  EXPECT_EQ(damping.size(), 1u);
}

TEST(Pipeline, ExcludedAsNotInDataset) {
  const auto result =
      run_inference(planted_paths(), {900}, InferenceConfig::fast());
  EXPECT_FALSE(result.dataset.index_of(900).has_value());
  EXPECT_THROW(result.category_of(900), std::out_of_range);
}

TEST(Pipeline, ProducesBothChainsAndSummaries) {
  const auto result =
      run_inference(planted_paths(), {}, InferenceConfig::fast());
  ASSERT_TRUE(result.mh_chain.has_value());
  ASSERT_TRUE(result.hmc_chain.has_value());
  EXPECT_EQ(result.mh_summaries.size(), result.dataset.as_count());
  EXPECT_EQ(result.hmc_summaries.size(), result.dataset.as_count());
  EXPECT_EQ(result.categories.size(), result.dataset.as_count());
  EXPECT_EQ(result.base_categories.size(), result.dataset.as_count());
}

TEST(Pipeline, MhOnlyMode) {
  InferenceConfig config = InferenceConfig::fast();
  config.use_hmc = false;
  const auto result = run_inference(planted_paths(), {}, config);
  EXPECT_TRUE(result.mh_chain.has_value());
  EXPECT_FALSE(result.hmc_chain.has_value());
  EXPECT_TRUE(result.hmc_summaries.empty());
  EXPECT_TRUE(core::is_damping(result.category_of(50)));
}

TEST(Pipeline, PinpointUpgradesInconsistentDamper) {
  // AS 701 damps only the paths not via 2497 (heterogeneous config).
  // Most of its paths look clean -> low mean; the damped paths have no
  // other candidate, so step 2 must upgrade it.
  // 3356 has overwhelming clean evidence (it is a large clean transit), so
  // the damped {701, 3356} paths can only be explained by 701 - yet 701's
  // own mean stays low because most of its paths (via the exempt neighbor
  // 2497) are clean.
  std::vector<labeling::LabeledPath> paths;
  for (int i = 0; i < 8; ++i)
    paths.push_back(make_labeled({701, 2497, 900}, false));  // exempt neighbor
  for (int i = 0; i < 30; ++i)
    paths.push_back(make_labeled({3356, 900}, false));  // 3356 itself clean
  for (int i = 0; i < 6; ++i)
    paths.push_back(make_labeled({701, 3356, 900}, true));  // damped branch
  InferenceConfig config = InferenceConfig::fast();
  config.mh.samples = 800;
  config.mh.burn_in = 400;
  const auto result = run_inference(paths, {900}, config);

  EXPECT_FALSE(core::is_damping(result.base_categories[
      *result.dataset.index_of(701)]))
      << "701's mean must look clean before pinpointing";
  EXPECT_TRUE(core::is_damping(result.category_of(701)))
      << "pinpointing must flag the inconsistent damper";
  EXPECT_FALSE(result.upgraded.empty());
}

TEST(Pipeline, NoDataAsIsUncertain) {
  // 77 only ever appears behind the strong damper 50.
  auto paths = planted_paths();
  for (int i = 0; i < 8; ++i)
    paths.push_back(make_labeled({77, 50, 900}, true));
  InferenceConfig config = InferenceConfig::fast();
  config.prior_alpha = 2.0;  // keep the no-data marginal centred
  config.prior_beta = 2.0;
  const auto result = run_inference(paths, {900}, config);
  const auto cat = result.category_of(77);
  EXPECT_FALSE(core::is_damping(cat));
}

TEST(Pipeline, EmptyInputThrows) {
  EXPECT_THROW(run_inference({}, {}, InferenceConfig::fast()),
               std::invalid_argument);
}

TEST(Pipeline, DeterministicForSeeds) {
  const auto a = run_inference(planted_paths(), {}, InferenceConfig::fast());
  const auto b = run_inference(planted_paths(), {}, InferenceConfig::fast());
  ASSERT_EQ(a.categories.size(), b.categories.size());
  for (std::size_t i = 0; i < a.categories.size(); ++i)
    EXPECT_EQ(a.categories[i], b.categories[i]);
}

}  // namespace
}  // namespace because::experiment
