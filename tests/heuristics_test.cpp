#include <gtest/gtest.h>

#include "heuristics/combined.hpp"

namespace because::heuristics {
namespace {

// ---------------------------------------------------------------- M1

TEST(PathRatio, MatchesDefinition) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 30}, true);
  d.add_path({10, 40}, false);
  d.add_path({20, 40}, false);
  const auto m1 = rfd_path_ratio(d);
  EXPECT_NEAR(m1[*d.index_of(10)], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m1[*d.index_of(20)], 0.5, 1e-12);
  EXPECT_NEAR(m1[*d.index_of(40)], 0.0, 1e-12);
}

TEST(PathRatio, StubBiasFalsePositive) {
  // The paper's caveat: a stub whose only upstream damps looks like a
  // damper under M1.
  labeling::PathDataset d;
  d.add_path({10, 99}, true);  // 10 damps; 99 is an innocent stub behind it
  d.add_path({10, 99}, true);
  const auto m1 = rfd_path_ratio(d);
  EXPECT_DOUBLE_EQ(m1[*d.index_of(99)], 1.0);  // false positive by design
}

TEST(PathRatio, EmptyDataset) {
  labeling::PathDataset d;
  EXPECT_TRUE(rfd_path_ratio(d).empty());
}

// ---------------------------------------------------------------- M2

labeling::LabeledPath make_labeled(collector::VpId vp, std::uint32_t prefix_id,
                                   topology::AsPath path, bool rfd) {
  labeling::LabeledPath p;
  p.vp = vp;
  p.prefix = bgp::Prefix{prefix_id, 24};
  p.path = std::move(path);
  p.rfd = rfd;
  return p;
}

labeling::ObservedPath make_observed(collector::VpId vp, std::uint32_t prefix_id,
                                     topology::AsPath path) {
  labeling::ObservedPath p;
  p.vp = vp;
  p.prefix = bgp::Prefix{prefix_id, 24};
  p.path = std::move(path);
  return p;
}

TEST(AltPath, DamperAbsentFromAlternatives) {
  // Damped path {100, 50, 10} and observed alternative {100, 60, 10} at the
  // same (vp, prefix): AS 50 is missing from the alternative (score 1),
  // ASs 100 and 10 appear on it (score 0).
  labeling::PathDataset d;
  d.add_path({100, 50, 10}, true);
  d.add_path({100, 60, 10}, false);
  const std::vector<labeling::LabeledPath> paths{
      make_labeled(0, 1, {100, 50, 10}, true),
  };
  const std::vector<labeling::ObservedPath> observed{
      make_observed(0, 1, {100, 50, 10}),
      make_observed(0, 1, {100, 60, 10}),
  };
  const auto m2 = alternative_path_metric(d, paths, observed);
  EXPECT_DOUBLE_EQ(m2[*d.index_of(50)], 1.0);
  EXPECT_DOUBLE_EQ(m2[*d.index_of(100)], 0.0);
  EXPECT_DOUBLE_EQ(m2[*d.index_of(10)], 0.0);
  EXPECT_DOUBLE_EQ(m2[*d.index_of(60)], 0.0);  // not on any damped path
}

TEST(AltPath, SeparateStreamsDoNotMix) {
  // The alternative lives at a different VP: no alternatives in-stream, so
  // no evidence is produced.
  labeling::PathDataset d;
  d.add_path({100, 50, 10}, true);
  d.add_path({200, 60, 10}, false);
  const std::vector<labeling::LabeledPath> paths{
      make_labeled(0, 1, {100, 50, 10}, true),
  };
  const std::vector<labeling::ObservedPath> observed{
      make_observed(0, 1, {100, 50, 10}),
      make_observed(1, 1, {200, 60, 10}),
  };
  const auto m2 = alternative_path_metric(d, paths, observed);
  EXPECT_DOUBLE_EQ(m2[*d.index_of(50)], 0.0);
}

TEST(AltPath, AveragesOverAlternatives) {
  // Two alternatives, AS 50 absent from one of them: score 0.5.
  labeling::PathDataset d;
  d.add_path({100, 50, 10}, true);
  d.add_path({100, 60, 10}, false);
  d.add_path({100, 50, 70, 10}, false);
  const std::vector<labeling::LabeledPath> paths{
      make_labeled(0, 1, {100, 50, 10}, true),
  };
  const std::vector<labeling::ObservedPath> observed{
      make_observed(0, 1, {100, 50, 10}),
      make_observed(0, 1, {100, 60, 10}),
      make_observed(0, 1, {100, 50, 70, 10}),
  };
  const auto m2 = alternative_path_metric(d, paths, observed);
  EXPECT_DOUBLE_EQ(m2[*d.index_of(50)], 0.5);
}

// ---------------------------------------------------------------- M3

TEST(BurstSlope, DecreasingHistogramScoresHigh) {
  const std::vector<double> falling{20, 18, 15, 12, 9, 6, 3, 1};
  EXPECT_GT(slope_score(falling), 0.8);
}

TEST(BurstSlope, FlatHistogramScoresZero) {
  const std::vector<double> flat{10, 10, 10, 10, 10};
  EXPECT_NEAR(slope_score(flat), 0.0, 1e-9);
}

TEST(BurstSlope, RisingHistogramScoresZero) {
  const std::vector<double> rising{1, 3, 5, 7, 9};
  EXPECT_DOUBLE_EQ(slope_score(rising), 0.0);
}

TEST(BurstSlope, NoDataIsNeutral) {
  const std::vector<double> empty(40, 0.0);
  EXPECT_DOUBLE_EQ(slope_score(empty), 0.5);
  EXPECT_DOUBLE_EQ(slope_score({}), 0.5);
}

TEST(BurstSlope, HistogramFromStore) {
  // Announcements through AS 50 concentrated early in the burst.
  collector::UpdateStore store;
  const auto vp = store.register_vp(100, collector::Project::kRipeRis, 0);

  Experiment exp;
  exp.prefix = bgp::Prefix{1, 24};
  exp.schedule.update_interval = sim::minutes(1);
  exp.schedule.burst_length = sim::minutes(20);
  exp.schedule.break_length = sim::minutes(40);
  exp.schedule.pairs = 1;
  exp.schedule.warmup = sim::minutes(5);

  const auto burst = beacon::burst_windows(exp.schedule)[0];
  for (int i = 0; i < 8; ++i) {
    bgp::Update u;
    u.type = bgp::UpdateType::kAnnouncement;
    u.prefix = exp.prefix;
    u.path = store.paths().intern(topology::AsPath{100, 50, 10});
    u.beacon_timestamp = 0;
    store.record(vp, burst.begin + sim::minutes(i), u);
  }

  BurstSlopeConfig config;
  config.bins = 10;
  const auto heights = burst_histogram(50, store, {exp}, config);
  double total = 0.0;
  for (double h : heights) total += h;
  EXPECT_DOUBLE_EQ(total, 8.0);
  EXPECT_GT(heights[0], 0.0);
  EXPECT_DOUBLE_EQ(heights.back(), 0.0);
  EXPECT_GT(slope_score(heights), 0.3);

  // An AS not on the path sees nothing.
  const auto none = burst_histogram(77, store, {exp}, config);
  for (double h : none) EXPECT_DOUBLE_EQ(h, 0.0);
}

// ---------------------------------------------------------------- combined

TEST(Combined, AveragesThreeMetrics) {
  labeling::PathDataset d;
  d.add_path({100, 50, 10}, true);
  d.add_path({100, 60, 10}, false);
  const std::vector<labeling::LabeledPath> paths{
      make_labeled(0, 1, {100, 50, 10}, true),
      make_labeled(0, 1, {100, 60, 10}, false),
  };
  const std::vector<labeling::ObservedPath> observed{
      make_observed(0, 1, {100, 50, 10}),
      make_observed(0, 1, {100, 60, 10}),
  };
  collector::UpdateStore store;
  store.register_vp(100, collector::Project::kRipeRis, 0);
  Experiment exp;
  exp.prefix = bgp::Prefix{1, 24};
  exp.schedule.update_interval = sim::minutes(1);
  exp.schedule.burst_length = sim::minutes(20);
  exp.schedule.break_length = sim::minutes(40);
  exp.schedule.pairs = 1;

  const auto scores = run_heuristics(d, paths, observed, store, {exp});
  ASSERT_EQ(scores.combined.size(), d.as_count());
  for (std::size_t n = 0; n < d.as_count(); ++n) {
    EXPECT_NEAR(scores.combined[n],
                (scores.path_ratio[n] + scores.alt_path[n] +
                 scores.burst_slope[n]) / 3.0,
                1e-12);
  }
  // AS 50 (the damper) must outscore the clean alternative AS 60.
  EXPECT_GT(scores.combined[*d.index_of(50)], scores.combined[*d.index_of(60)]);
}

TEST(Combined, PredictionThreshold) {
  const std::vector<double> combined{0.2, 0.5, 0.8};
  const auto pred = heuristic_prediction(combined, 0.5);
  EXPECT_FALSE(pred[0]);
  EXPECT_TRUE(pred[1]);
  EXPECT_TRUE(pred[2]);
  EXPECT_THROW(heuristic_prediction(combined, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace because::heuristics
