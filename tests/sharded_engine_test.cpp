// Space-parallel sharded simulation: the bit-identity bar.
//
// The sharded engine's contract (DESIGN.md §5j) is that a campaign's results
// are a pure function of its config — not of the shard count. These tests pin
// that from four directions:
//
//   1. Partitioner invariants: total coverage, determinism, balance cap,
//      clamping, and the id directory.
//   2. Serial equivalence: with no record-time randomness (MRAI jitter off,
//      no aggregator noise, no session resets) a sharded campaign's collector
//      store digests BIT-FOR-BIT against the legacy serial engine, at every
//      shard count — including shards=1 with force_rounds, which exercises
//      the full capture/merge protocol against the plain-run reference.
//   3. Cross-K identity: with every noise source enabled (jitter, aggregator
//      noise, session resets, churn), digests agree across K=1/2/4/8 — the
//      per-session jitter hash and per-VP noise lanes make randomness a
//      function of identity, not of event interleaving.
//   4. Warm starts: both warm-start modes survive sharding, and the
//      beacon-delta digest matches the legacy serial campaign.
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "experiment/campaign.hpp"
#include "experiment/parallel_runner.hpp"
#include "stats/rng.hpp"
#include "topology/generator.hpp"
#include "topology/partition.hpp"
#include "util/thread_pool.hpp"

namespace because {
namespace {

using topology::AsGraph;
using topology::AsId;

// --------------------------------------------------------------------------
// 1. Partitioner invariants.

AsGraph partition_graph_fixture(std::uint64_t seed, std::size_t ases) {
  stats::Rng rng(seed);
  return topology::generate(topology::internet_like(ases), rng);
}

TEST(Partition, CoversEveryAsWithinTheBalanceCap) {
  const AsGraph graph = partition_graph_fixture(7, 500);
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    topology::PartitionConfig config;
    config.shards = k;
    const topology::Partition part = topology::partition_graph(graph, config);
    ASSERT_EQ(part.shards, k);
    ASSERT_EQ(part.ids.size(), graph.as_count());
    ASSERT_EQ(part.shard_of.size(), graph.as_count());
    std::vector<std::size_t> sizes(k, 0);
    for (std::uint32_t s : part.shard_of) {
      ASSERT_LT(s, k);
      ++sizes[s];
    }
    const auto cap = static_cast<std::size_t>(
        (static_cast<double>(graph.as_count() + k - 1) / k) *
        config.balance_slack);
    for (std::uint32_t s = 0; s < k; ++s) {
      EXPECT_GT(sizes[s], 0u) << "empty shard " << s << " of " << k;
      EXPECT_LE(sizes[s], cap) << "shard " << s << " over the balance cap";
    }
    EXPECT_EQ(part.largest, *std::max_element(sizes.begin(), sizes.end()));
    EXPECT_EQ(part.smallest, *std::min_element(sizes.begin(), sizes.end()));
    if (k == 1) {
      EXPECT_EQ(part.cut_edges, 0u);
    } else {
      EXPECT_GT(part.cut_edges, 0u);  // connected graph: some edge crosses
      EXPECT_LT(part.cut_edges, part.total_edges);
    }
  }
}

TEST(Partition, IsDeterministicAndIndexedById) {
  const AsGraph graph = partition_graph_fixture(11, 300);
  topology::PartitionConfig config;
  config.shards = 4;
  const topology::Partition a = topology::partition_graph(graph, config);
  const topology::Partition b = topology::partition_graph(graph, config);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
  for (std::size_t i = 0; i < a.ids.size(); ++i)
    EXPECT_EQ(a.shard_of_id(a.ids[i]), a.shard_of[i]);
  EXPECT_THROW(a.shard_of_id(0xdeadbeef), std::out_of_range);
}

TEST(Partition, ClampsShardCountToTheAsCount) {
  AsGraph tiny;
  tiny.add_as(1, topology::Tier::kTier1);
  tiny.add_as(2, topology::Tier::kStub);
  tiny.add_provider_customer(1, 2);
  topology::PartitionConfig config;
  config.shards = 16;
  const topology::Partition part = topology::partition_graph(tiny, config);
  EXPECT_EQ(part.shards, 2u);
  EXPECT_THROW(topology::partition_graph(tiny, topology::PartitionConfig{0}),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Campaign digests (content-hashed: PathIds differ across tables by design,
// the AS sequences and record order must not).

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t store_digest(const collector::UpdateStore& store,
                           bool beacon_delta_only = false) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const collector::RecordedUpdate& rec : store.all()) {
    if (beacon_delta_only &&
        rec.update.prefix.id >= experiment::kBaselinePrefixBase)
      continue;
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash,
                     (static_cast<std::uint64_t>(rec.update.prefix.id) << 8) |
                         rec.update.prefix.length);
    hash = fnv1a_u64(hash,
                     static_cast<std::uint64_t>(rec.update.beacon_timestamp));
    const auto path = store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return hash;
}

std::uint64_t labeled_digest(const experiment::CampaignResult& result) {
  std::uint64_t hash = 14695981039346656037ULL;
  hash = fnv1a_u64(hash, result.labeled.size());
  for (const labeling::LabeledPath& p : result.labeled) {
    hash = fnv1a_u64(hash, (static_cast<std::uint64_t>(p.prefix.id) << 8) |
                               p.prefix.length);
    hash = fnv1a_u64(hash, p.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(p.rfd));
    hash = fnv1a_u64(hash, p.relevant_pairs);
    hash = fnv1a_u64(hash, p.matching_pairs);
    for (AsId as : p.path) hash = fnv1a_u64(hash, as);
  }
  hash = fnv1a_u64(hash, result.observed.size());
  return hash;
}

experiment::CampaignConfig sharded_config(std::uint64_t seed, bool zero_noise) {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.topology.tier1_count = 6;
  config.topology.transit_count = 30;
  config.topology.stub_count = 140;
  config.pairs = 1;
  config.burst_length = sim::minutes(6);
  config.break_length = sim::minutes(20);
  config.background_prefixes = 2;
  config.seed = seed;
  if (zero_noise) {
    config.network.mrai_jitter = 0.0;
    config.missing_aggregator_prob = 0.0;
    config.session_resets = 0;
  } else {
    config.missing_aggregator_prob = 0.02;
    config.session_resets = 2;
  }
  return config;
}

// --------------------------------------------------------------------------
// 2. Serial equivalence (no record-time randomness).

TEST(ShardedCampaign, MatchesSerialEngineAtEveryShardCount) {
  experiment::CampaignConfig config = sharded_config(17, /*zero_noise=*/true);
  const experiment::CampaignResult serial = experiment::run_campaign(config);
  const std::uint64_t want = store_digest(serial.store);
  ASSERT_GT(serial.store.size(), 0u);

  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    config.shards = shards;
    const experiment::CampaignResult sharded = experiment::run_campaign(config);
    EXPECT_EQ(sharded.store.size(), serial.store.size()) << shards << " shards";
    EXPECT_EQ(store_digest(sharded.store), want) << shards << " shards";
    EXPECT_EQ(sharded.events_executed, serial.events_executed)
        << shards << " shards";
    EXPECT_EQ(labeled_digest(sharded), labeled_digest(serial))
        << shards << " shards";
    EXPECT_EQ(sharded.store.discarded_invalid_aggregator(),
              serial.store.discarded_invalid_aggregator())
        << shards << " shards";
  }
}

TEST(ShardedCampaign, ForcedRoundsMatchThePlainSingleShardRun) {
  // shards=1 with force_rounds drives every event through the round
  // capture/merge machinery; any ordering bug in the protocol shows up as a
  // digest mismatch against the plain single-shard run.
  experiment::CampaignConfig config = sharded_config(23, /*zero_noise=*/false);
  config.shards = 1;
  const experiment::CampaignResult plain = experiment::run_campaign(config);
  config.force_rounds = true;
  const experiment::CampaignResult rounds = experiment::run_campaign(config);
  ASSERT_GT(plain.store.size(), 0u);
  EXPECT_EQ(store_digest(rounds.store), store_digest(plain.store));
  EXPECT_EQ(rounds.events_executed, plain.events_executed);
}

// --------------------------------------------------------------------------
// 3. Cross-K identity with every noise source on.

TEST(ShardedCampaign, NoisyCampaignIsShardCountInvariant) {
  experiment::CampaignConfig config = sharded_config(31, /*zero_noise=*/false);
  config.shards = 1;
  const experiment::CampaignResult reference = experiment::run_campaign(config);
  const std::uint64_t want = store_digest(reference.store);
  ASSERT_GT(reference.store.size(), 0u);
  // Noise actually fired: some announcements lost their aggregator.
  EXPECT_GT(reference.store.discarded_invalid_aggregator(), 0u);

  for (std::uint32_t shards : {2u, 4u, 8u}) {
    config.shards = shards;
    const experiment::CampaignResult sharded = experiment::run_campaign(config);
    EXPECT_EQ(sharded.store.size(), reference.store.size())
        << shards << " shards";
    EXPECT_EQ(store_digest(sharded.store), want) << shards << " shards";
    EXPECT_EQ(sharded.events_executed, reference.events_executed)
        << shards << " shards";
    EXPECT_EQ(labeled_digest(sharded), labeled_digest(reference))
        << shards << " shards";
  }
}

// --------------------------------------------------------------------------
// 4. Warm starts under sharding.

TEST(ShardedCampaign, WarmStartModesMatchSerialBeaconDelta) {
  experiment::CampaignConfig config = sharded_config(41, /*zero_noise=*/true);
  config.warm_start.mode = experiment::WarmStart::kDynamic;
  config.warm_start.baseline_prefixes = 3;
  config.warm_start.horizon = sim::hours(6);

  const experiment::CampaignResult serial = experiment::run_campaign(config);
  const std::uint64_t want = store_digest(serial.store, true);

  for (const experiment::WarmStart mode :
       {experiment::WarmStart::kDynamic, experiment::WarmStart::kStatic}) {
    config.warm_start.mode = mode;
    config.shards = 4;
    const experiment::CampaignResult sharded = experiment::run_campaign(config);
    EXPECT_EQ(store_digest(sharded.store, true), want)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(sharded.baseline, serial.baseline);
  }
}

// --------------------------------------------------------------------------
// 5. Cells x shards budget (ParallelCampaignRunner nesting heuristic).

TEST(ShardBudget, EffectiveShardsRespectsBudgetAndRequest) {
  using experiment::ParallelCampaignRunner;
  const std::size_t hw = util::ThreadPool::hardware_threads();
  std::uint32_t hw_pow2 = 1;
  while (std::size_t{hw_pow2} * 2 <= hw) hw_pow2 *= 2;

  // Serial-engine and single-shard requests pass through untouched.
  EXPECT_EQ(ParallelCampaignRunner::effective_shards(0, 8, 4), 0u);
  EXPECT_EQ(ParallelCampaignRunner::effective_shards(1, 8, 4), 1u);
  // One cell: the whole machine is the budget, capped by the request.
  EXPECT_EQ(ParallelCampaignRunner::effective_shards(64, 1, 1), hw_pow2);
  EXPECT_EQ(ParallelCampaignRunner::effective_shards(2, 1, 1),
            std::min<std::uint32_t>(2, hw_pow2));
  // A saturated pool leaves one thread per cell: shards collapse to 1.
  EXPECT_EQ(ParallelCampaignRunner::effective_shards(8, hw, 1000), 1u);
  // Requests within budget are NOT rounded to a power of two — only the
  // budget is.
  if (hw_pow2 >= 4)
    EXPECT_EQ(ParallelCampaignRunner::effective_shards(3, 1, 1), 3u);
}

TEST(ShardBudget, BudgetedRunnerMatchesExactShardResults) {
  // The budget may lower K, and K never changes results — so a budgeted
  // runner's campaigns digest identically to the exact-K serial reference.
  experiment::CampaignConfig config = sharded_config(53, /*zero_noise=*/false);
  config.shards = 4;
  experiment::CampaignScenario scenario{"budgeted", config};

  const experiment::CampaignResult reference = experiment::run_campaign(config);
  experiment::ParallelCampaignRunner runner(2, /*auto_shard_budget=*/true);
  const std::vector<experiment::CampaignResult> results =
      runner.run(std::vector<experiment::CampaignScenario>{scenario});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(store_digest(results[0].store), store_digest(reference.store));
  EXPECT_EQ(results[0].events_executed, reference.events_executed);
}

}  // namespace
}  // namespace because
