#include <gtest/gtest.h>

#include "baselines/binary_sat.hpp"
#include "core/mle.hpp"

namespace because {
namespace {

// ---------------------------------------------------------------- MLE

TEST(Mle, SingleAsFractionRecovered) {
  // One AS on 3 RFD paths and 1 clean path: MLE of p is 0.75.
  labeling::PathDataset d;
  d.add_path({10}, true);
  d.add_path({10}, true);
  d.add_path({10}, true);
  d.add_path({10}, false);
  const core::Likelihood lik(d);
  const auto result = core::maximize_likelihood(lik);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.p[0], 0.75, 0.02);
}

TEST(Mle, PlantedDamperGetsHighP) {
  labeling::PathDataset d;
  for (int i = 0; i < 10; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({20, 30}, false);
    d.add_path({30}, false);
  }
  const core::Likelihood lik(d);
  const auto result = core::maximize_likelihood(lik);
  EXPECT_GT(result.p[*d.index_of(10)], 0.9);
  EXPECT_LT(result.p[*d.index_of(20)], 0.1);
  EXPECT_LT(result.p[*d.index_of(30)], 0.1);
}

TEST(Mle, LikelihoodNeverDecreases) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({20, 30}, false);
  const core::Likelihood lik(d);
  core::MleConfig config;
  config.max_iterations = 1;
  std::vector<double> start(d.as_count(), 0.5);
  const double initial = lik.log_likelihood(start);
  const auto result = core::maximize_likelihood(lik, config);
  EXPECT_GE(result.log_likelihood, initial - 1e-9);
}

TEST(Mle, Validation) {
  labeling::PathDataset d;
  d.add_path({10}, true);
  const core::Likelihood lik(d);
  core::MleConfig config;
  config.grid_points = 1;
  EXPECT_THROW(core::maximize_likelihood(lik, config), std::invalid_argument);
  config = core::MleConfig{};
  config.initial_p = 2.0;
  EXPECT_THROW(core::maximize_likelihood(lik, config), std::invalid_argument);
}

// ---------------------------------------------------------------- SAT

TEST(BinarySat, ConsistentInstanceSatisfiable) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);   // 10 or 20 damps
  d.add_path({20, 30}, false);  // 20, 30 clean
  const auto result = baselines::solve_binary_tomography(d);
  EXPECT_TRUE(result.satisfiable);
  EXPECT_TRUE(result.forced_clean.count(20));
  EXPECT_TRUE(result.forced_clean.count(30));
  // The only explanation left is AS 10.
  EXPECT_TRUE(result.greedy_dampers.count(10));
}

TEST(BinarySat, InconsistentDeploymentUnsat) {
  // AS 701 damps some paths and not others (the paper's exact argument for
  // why SAT-based binary tomography fails): the instance has no solution.
  labeling::PathDataset d;
  d.add_path({701, 2497}, false);  // forces both clean
  d.add_path({701, 3356}, true);
  d.add_path({3356}, false);       // forces 3356 clean -> conflict
  const auto result = baselines::solve_binary_tomography(d);
  EXPECT_FALSE(result.satisfiable);
  ASSERT_EQ(result.conflicting_paths.size(), 1u);
  EXPECT_TRUE(d.shows_property(result.conflicting_paths[0]));
}

TEST(BinarySat, GreedyHittingSetCoversAllRfdPaths) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 30}, true);
  d.add_path({40, 50}, true);
  const auto result = baselines::solve_binary_tomography(d);
  ASSERT_TRUE(result.satisfiable);
  for (std::size_t j = 0; j < d.path_count(); ++j) {
    if (!d.shows_property(j)) continue;
    bool hit = false;
    for (std::size_t n : d.path_nodes(j))
      if (result.greedy_dampers.count(d.as_at(n))) hit = true;
    EXPECT_TRUE(hit);
  }
  // Greedy picks 10 (covers two paths) and one of 40/50.
  EXPECT_TRUE(result.greedy_dampers.count(10));
  EXPECT_EQ(result.greedy_dampers.size(), 2u);
}

TEST(BinarySat, ManySolutionsReportedViaFreeVariables) {
  labeling::PathDataset d;
  d.add_path({10, 20, 30}, true);
  const auto result = baselines::solve_binary_tomography(d);
  EXPECT_TRUE(result.satisfiable);
  EXPECT_EQ(result.free_variables, 3u);  // 2^3 - 1 assignments satisfy it
  EXPECT_EQ(result.greedy_dampers.size(), 1u);
}

TEST(BinarySat, EmptyDatasetTriviallySat) {
  labeling::PathDataset d;
  const auto result = baselines::solve_binary_tomography(d);
  EXPECT_TRUE(result.satisfiable);
  EXPECT_TRUE(result.greedy_dampers.empty());
}

TEST(BinarySat, AllCleanInstance) {
  labeling::PathDataset d;
  d.add_path({10, 20}, false);
  d.add_path({20, 30}, false);
  const auto result = baselines::solve_binary_tomography(d);
  EXPECT_TRUE(result.satisfiable);
  EXPECT_EQ(result.forced_clean.size(), 3u);
  EXPECT_EQ(result.free_variables, 0u);
}

}  // namespace
}  // namespace because
