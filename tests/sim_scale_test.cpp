// Scale smoke tests (ctest label: slow).
//
// These lock in the point of the typed engine and dense network storage:
// thousands-of-ASes simulations must stay tractable. A ~5k-AS network has to
// converge on a single originated prefix within explicit event and simulated-
// time budgets, and a minimal 10k-AS beacon campaign has to run end to end.
// The budgets are deliberately generous (they guard against algorithmic
// blowups — unbounded path hunting, calendar-queue degeneration — not against
// constant factors); bench/bench_sim tracks the actual throughput numbers.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "bgp/network.hpp"
#include "experiment/campaign.hpp"
#include "stats/rng.hpp"
#include "topology/generator.hpp"

namespace because {
namespace {

TEST(SimScale, FiveThousandAsNetworkConvergesWithinBudget) {
  topology::GeneratorConfig tcfg;
  tcfg.tier1_count = 10;
  tcfg.transit_count = 600;
  tcfg.stub_count = 4400;
  stats::Rng rng(11);
  const topology::AsGraph graph = topology::generate(tcfg, rng);
  ASSERT_EQ(graph.as_count(), 5010u);

  sim::EventQueue queue;
  stats::Rng net_rng = rng.fork();
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, net_rng);

  // Originate one prefix at a stub and let BGP converge.
  topology::AsId origin = 0;
  for (topology::AsId as : graph.as_ids())
    if (graph.tier(as) == topology::Tier::kStub) {
      origin = as;
      break;
    }
  ASSERT_NE(origin, 0u);
  const bgp::Prefix prefix{1, 24};
  network.router(origin).originate(prefix, 0);
  queue.run();

  // Gao-Rexford export lets a customer-originated route reach every AS.
  std::size_t reached = 0;
  for (topology::AsId as : graph.as_ids())
    if (network.router(as).loc_rib().find(prefix) != nullptr) ++reached;
  EXPECT_GE(reached, (graph.as_count() * 95) / 100);

  // Budgets: convergence is a bounded cascade, not an open-ended churn.
  EXPECT_LT(queue.executed(), 5'000'000u);
  EXPECT_LT(queue.now(), sim::hours(2));
}

// --------------------------------------------------------------------------
// RIB backend equivalence at scale: the flat slab backend and the reference
// map backend must produce bit-identical collector traces, which exercises
// the enumeration-order contract (bgp/rib.hpp) under real campaign churn.

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t digest_store(const collector::UpdateStore& store) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const collector::RecordedUpdate& rec : store.all()) {
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, (static_cast<std::uint64_t>(rec.update.prefix.id) << 8) |
                               rec.update.prefix.length);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.beacon_timestamp));
    const auto path = store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (topology::AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return hash;
}

experiment::CampaignConfig backend_scale_config(std::uint32_t transit,
                                                std::uint32_t stubs,
                                                std::uint64_t seed) {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.topology.tier1_count = 8;
  config.topology.transit_count = transit;
  config.topology.stub_count = stubs;
  config.pairs = 1;
  config.burst_length = sim::minutes(8);
  config.break_length = sim::minutes(30);
  config.background_prefixes = 2;
  config.session_resets = 1;
  config.seed = seed;
  return config;
}

void expect_rib_backends_agree(const experiment::CampaignConfig& base) {
  experiment::CampaignConfig flat_config = base;
  flat_config.network.rib_backend = bgp::RibBackend::kFlat;
  experiment::CampaignConfig map_config = base;
  map_config.network.rib_backend = bgp::RibBackend::kMap;
  const experiment::CampaignResult flat = experiment::run_campaign(flat_config);
  const experiment::CampaignResult map = experiment::run_campaign(map_config);
  EXPECT_EQ(flat.events_executed, map.events_executed);
  ASSERT_EQ(flat.store.size(), map.store.size());
  EXPECT_EQ(digest_store(flat.store), digest_store(map.store));
}

TEST(SimScale, RibBackendDigestsMatchAtOneThousandAses) {
  expect_rib_backends_agree(backend_scale_config(120, 880, 5));
}

TEST(SimScale, RibBackendDigestsMatchAtFiveThousandAses) {
  expect_rib_backends_agree(backend_scale_config(500, 4500, 9));
}

TEST(SimScale, TenThousandAsCampaignCompletes) {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.topology.tier1_count = 12;
  config.topology.transit_count = 1000;
  config.topology.stub_count = 9000;
  config.beacon_sites = 1;
  config.update_intervals = {sim::minutes(2)};
  config.prefixes_per_interval = 1;
  config.burst_length = sim::minutes(6);
  config.break_length = sim::minutes(20);
  config.pairs = 1;
  config.include_anchor = false;
  config.include_ripe_reference = false;
  config.vantage_points = 8;
  config.background_prefixes = 0;
  config.session_resets = 0;
  config.seed = 3;

  const experiment::CampaignResult result = experiment::run_campaign(config);
  EXPECT_GT(result.events_executed, 0u);
  EXPECT_GT(result.store.size(), 0u);
  EXPECT_FALSE(result.observed.empty());
}

}  // namespace
}  // namespace because
