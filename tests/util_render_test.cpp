// Rendering helpers that the bench output depends on.
#include <gtest/gtest.h>

#include "bgp/message.hpp"
#include "bgp/prefix.hpp"
#include "stats/histogram.hpp"

namespace because {
namespace {

TEST(PrefixRender, ToString) {
  EXPECT_EQ(bgp::to_string(bgp::Prefix{7, 24}), "pfx7/24");
  EXPECT_EQ(bgp::to_string(bgp::Prefix{0, 25}), "pfx0/25");
}

TEST(PrefixRender, OrderingAndHash) {
  const bgp::Prefix a{1, 24}, b{1, 25}, c{2, 24};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_NE(std::hash<bgp::Prefix>()(a), std::hash<bgp::Prefix>()(b));
  EXPECT_EQ(std::hash<bgp::Prefix>()(a), std::hash<bgp::Prefix>()(bgp::Prefix{1, 24}));
}

TEST(UpdateRender, AnnouncementShowsPath) {
  topology::PathTable paths;
  bgp::Update u;
  u.type = bgp::UpdateType::kAnnouncement;
  u.prefix = bgp::Prefix{3, 24};
  u.path = paths.intern(topology::AsPath{10, 20});
  const std::string text = bgp::to_string(u, paths);
  EXPECT_NE(text.find("A pfx3/24"), std::string::npos);
  EXPECT_NE(text.find("path=[10 20]"), std::string::npos);
}

TEST(UpdateRender, WithdrawalHasNoPath) {
  topology::PathTable paths;
  bgp::Update u;
  u.type = bgp::UpdateType::kWithdrawal;
  u.prefix = bgp::Prefix{3, 24};
  const std::string text = bgp::to_string(u, paths);
  EXPECT_NE(text.find("W pfx3/24"), std::string::npos);
  EXPECT_EQ(text.find("path"), std::string::npos);
}

TEST(HistogramRender, AsciiScalesToPeak) {
  stats::Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.1);
  h.add(0.9);
  const std::string art = h.ascii(10);
  // First bin is the peak (10 hashes), second proportional (1).
  EXPECT_NE(art.find("##########  (10)"), std::string::npos);
  EXPECT_NE(art.find("#  (1)"), std::string::npos);
}

TEST(HistogramRender, AsciiEmptyHistogram) {
  stats::Histogram h(0.0, 1.0, 3);
  const std::string art = h.ascii();
  EXPECT_NE(art.find("(0)"), std::string::npos);
}

}  // namespace
}  // namespace because
