// lint-as: src/service/query_path.cpp
// Fixture: wallclock reads inside src/service (outside the Clock shim) must
// trip obs-wallclock. The becaused daemon's responses and snapshots are
// byte-identical replays of a fixed ingestion schedule; wall time may only
// enter through a service::Clock* the caller injects.
#include <chrono>
#include <ctime>

namespace because::service {

long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long bad_libc_time() {
  return static_cast<long>(time(nullptr));
}

}  // namespace because::service
