// lint-as: src/bgp/fixture_hot_path_closure.cpp
// Fixture: closure scheduling on the hot path vs the typed-event API.

namespace because::bgp {

struct FakeQueue {
  template <typename F>
  void schedule_at(long when, F&& f);
  template <typename F>
  void schedule_in(long delay, F&& f);
  void schedule_event_at(long when, int kind, void (*fn)(), void* ctx);
  void schedule_event_in(long delay, int kind, void (*fn)(), void* ctx);
};

void hot_path(FakeQueue& queue) {
  queue.schedule_at(100, [] {});  // expected: hot-path-closure
  queue.schedule_in(5, [] {});    // expected: hot-path-closure
}

void typed_path(FakeQueue& queue) {
  // The typed API is the sanctioned form; must not be flagged.
  queue.schedule_event_at(100, 1, nullptr, nullptr);
  queue.schedule_event_in(5, 1, nullptr, nullptr);
}

}  // namespace because::bgp
