// lint-as: src/sim/fixture_lock_scoped_channel_wait.cpp
// lint-allow: lock-scoped-call | channel.wait_for_drain();
// Fixture: blocking channel waits while a scoped lock is alive (the sharded
// engine's cross-shard channels). A worker parked in recv()/pop_wait()/
// wait_for_*() while holding a lock stalls every shard that needs it. The
// CondVar shape cv.wait(lock, pred) / cv.wait_for(lock, ...) is exempt: it
// takes the lock and releases it while parked. The drain helper is the
// allowlisted-negative half of the pair (a justified shutdown hand-off).
#include <mutex>

namespace because::sim {

template <typename Channel>
void bad_recv_under_lock(Channel& channel, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  channel.recv();  // expected: lock-scoped-call
}

template <typename Channel>
void bad_pop_wait_under_lock(Channel* channel, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  channel->pop_wait();  // expected: lock-scoped-call
}

template <typename Channel>
void bad_wait_for_round_under_lock(Channel& channel, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  channel.wait_for_round(3);  // expected: lock-scoped-call
}

template <typename Cv>
void good_condvar_wait(Cv& cv, std::mutex& mu, bool& ready) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&ready] { return ready; });  // fine: CondVar takes the lock
  cv.wait_for(lock, 5, [&ready] { return ready; });  // fine: same shape
}

template <typename Channel>
void good_recv_after_scope(Channel& channel, std::mutex& mu) {
  {
    std::lock_guard<std::mutex> lock(mu);
  }
  channel.recv();  // fine: the lock scope has closed
}

template <typename Channel>
void allowed_drain_under_lock(Channel& channel, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  channel.wait_for_drain();  // allowlisted shutdown hand-off
}

}  // namespace because::sim
