// lint-as: src/labeling/fixture_unordered_digest.cpp
// lint-allow: unordered-digest | for (const auto& [key, weight] : weights)
// Fixture: hash-order iteration feeding a digest. The rule flags every
// range-for over an identifier declared with an unordered type anywhere in
// the same file (file-wide on purpose: text and AST backends must agree so
// they can share one allowlist). The `weights` loop is an order-independent
// sum, suppressed by the lint-allow header exactly the way a real site
// earns a tools/lint_allowlist.txt entry.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace because::labeling {

std::uint64_t bad_digest_from_hash_order(
    const std::unordered_map<int, int>& histogram) {
  std::unordered_map<int, int> counts = histogram;
  std::uint64_t digest = 0;
  for (const auto& [key, value] : counts)  // expected: unordered-digest
    digest = digest * 31 + static_cast<std::uint64_t>(key + value);
  return digest;
}

std::uint64_t allowed_commutative_sum(const std::vector<int>& raw) {
  std::unordered_map<int, std::uint64_t> weights;
  for (int v : raw) weights[v % 16] += 1;
  std::uint64_t sum = 0;
  for (const auto& [key, weight] : weights)  // allowlisted: order-free sum
    sum += weight;
  return sum;
}

std::vector<int> good_sorted_first(const std::vector<int>& raw) {
  std::unordered_map<int, int> dedup;
  for (int v : raw) dedup[v] = v;
  std::vector<int> keys;
  keys.reserve(dedup.size());
  for (int v : raw)
    if (dedup.count(v) != 0) keys.push_back(v);  // fine: vector order
  return keys;
}

}  // namespace because::labeling
