// lint-as: src/sim/fixture_clean.cpp
// Fixture: a file in the strictest directory with zero violations — every
// banned token appears only inside comments, strings, or raw strings, which
// the stripper must blank out before matching.
#include <string>

namespace because::sim {

// Comments mentioning time(nullptr), rand(), new Thing, delete ptr,
// const_cast<int&>(x), assert(false) and q.schedule_at(0, f) are fine.

/* Block comment spanning lines:
   std::chrono::system_clock::now();
   assert(always_ignored);
*/

inline std::string docs() {
  std::string s = "time(nullptr) rand() new delete assert(x)";
  s += R"(raw string with const_cast<int&>(y) and .schedule_in(3, f))";
  return s;
}

inline const char kEscaped[] = "quote \" then assert( inside string";

}  // namespace because::sim
