// lint-as: src/core/kernels/fixture_raw_simd_kernels.cpp
// Fixture: the same intrinsics are sanctioned inside src/core/kernels/,
// the raw-simd rule's excluded subtree — this file must report nothing.
#include <immintrin.h>  // fine: kernels module owns the intrinsics boundary

namespace because::core::kernels {

double fine_intrinsic_call(const double* p) {
  __m256d v = _mm256_loadu_pd(p);  // fine
  v = _mm256_mul_pd(v, v);         // fine
  double out[4];
  _mm256_storeu_pd(out, v);  // fine
  return out[0];
}

}  // namespace because::core::kernels
