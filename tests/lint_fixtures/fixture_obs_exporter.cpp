// lint-as: src/obs/export.cpp
// Fixture: the exporter files are the allowlisted wallclock boundary of
// src/obs — the identical reads that trip obs-wallclock elsewhere (see
// fixture_obs_wallclock.cpp) must report nothing here.
#include <chrono>

namespace because::obs {

long allowed_export_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace because::obs
