// lint-as: src/util/fixture_global_state.cpp
// lint-allow: global-state | inline std::atomic<bool> g_allowed_switch{false};
// Fixture: mutable namespace-scope state. Hidden globals couple runs and
// break (topology, seed) determinism; only the documented process-wide
// switches earn allowlist entries (here mimicked by the lint-allow header).
// const/constexpr tables, class members, and function-local statics are all
// outside the rule.
#include <atomic>
#include <cstdint>

namespace because::util {

int g_bad_counter = 0;  // expected: global-state

inline std::atomic<std::uint64_t> g_bad_total{0};  // expected: global-state

thread_local int t_bad_lane = -1;  // expected: global-state

constexpr int kFine = 3;  // fine: constexpr

const char* const kAlsoFine = "x";  // fine: const

inline std::atomic<bool> g_allowed_switch{false};  // allowlisted switch

class Holder {
 public:
  int counter_ = 0;  // fine: class member, not namespace scope
};

inline int good_local_static() {
  static int local_static = 0;  // fine: function scope
  return ++local_static;
}

}  // namespace because::util
