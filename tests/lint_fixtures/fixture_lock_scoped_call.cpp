// lint-as: src/util/fixture_lock_scoped_call.cpp
// lint-allow: lock-scoped-call | queue.schedule_event_at(when, payload);
// Fixture: schedule()/submit() while a scoped lock is alive. The callee may
// block on a full pool or re-enter the same (non-recursive) mutex; the
// thread pool's own discipline is notify-outside-the-lock. A call after the
// lock's block closes is fine; the flush helper demonstrates the allowlisted
// shape (a justified hold-the-lock hand-off).
#include <mutex>

namespace because::util {

template <typename Pool, typename Job>
void bad_submit_under_lock(Pool& pool, std::mutex& mu, Job job) {
  std::lock_guard<std::mutex> lock(mu);
  pool.submit(job);  // expected: lock-scoped-call
}

template <typename Queue>
void bad_schedule_under_lock(Queue& queue, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  queue.schedule_event_in(5, 1);  // expected: lock-scoped-call
}

template <typename Pool, typename Job>
void good_submit_after_scope(Pool& pool, std::mutex& mu, Job job) {
  {
    std::lock_guard<std::mutex> lock(mu);
  }
  pool.submit(job);  // fine: the lock scope has closed
}

template <typename Queue, typename T>
void allowed_flush_under_lock(Queue& queue, std::mutex& mu, T when,
                              T payload) {
  std::lock_guard<std::mutex> lock(mu);
  queue.schedule_event_at(when, payload);  // allowlisted hand-off
}

}  // namespace because::util
