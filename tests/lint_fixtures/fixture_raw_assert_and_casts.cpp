// lint-as: src/core/fixture_raw_assert_and_casts.cpp
// Fixture: raw assert() and banned casts vs contract macros.
#include <cassert>
#include <cstdint>

namespace because::core {

void bad_raw_assert(int x) {
  assert(x > 0);  // expected: raw-assert
}

std::uint64_t bad_reinterpret(double d) {
  return *reinterpret_cast<std::uint64_t*>(&d);  // expected: banned-cast
}

int bad_const_cast(const int& x) {
  return ++const_cast<int&>(x);  // expected: banned-cast
}

// static_assert shares a suffix with assert( but is compile-time and fine.
static_assert(sizeof(std::uint64_t) == 8, "layout");

// static_cast is the sanctioned cast; must not be flagged.
int good_cast(double d) { return static_cast<int>(d); }

}  // namespace because::core
