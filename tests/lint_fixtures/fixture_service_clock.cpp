// lint-as: src/service/clock.cpp
// Fixture: the service::Clock shim is the single sanctioned wallclock site
// of src/service (the daemon takes a Clock*, tests inject a FixedClock) —
// the identical read that trips obs-wallclock elsewhere (see
// fixture_service_wallclock.cpp) must report nothing here.
#include <chrono>

namespace because::service {

long allowed_clock_shim_read() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace because::service
