// lint-as: src/obs/trace_extra.cpp
// Fixture: wallclock reads inside src/obs (outside the exporter files) must
// trip obs-wallclock. Traces and metrics key on sim::Time and monotonic step
// counters, never wall time.
#include <chrono>
#include <ctime>

namespace because::obs {

long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long bad_libc_time() {
  return static_cast<long>(time(nullptr));
}

}  // namespace because::obs
