// lint-as: src/stats/fixture_float_equal.cpp
// Fixture: floating-point literal equality in stats code.
#include <cmath>

namespace because::stats {

bool bad_exact_probability(double p) {
  return p == 1.0;  // expected: float-equal
}

bool bad_exact_zero(double x) {
  return 0.0 == x;  // expected: float-equal
}

bool bad_not_equal(double x) {
  return x != 0.5;  // expected: float-equal
}

bool good_tolerance(double x) {
  return std::abs(x - 0.5) < 1e-12;  // fine: tolerance comparison
}

bool good_integer_compare(int n) {
  return n == 0;  // fine: integral equality is exact
}

bool good_ordering(double x) {
  return x <= 0.0 || x >= 1.0;  // fine: ordering, not equality
}

}  // namespace because::stats
