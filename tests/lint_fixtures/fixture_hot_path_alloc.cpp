// lint-as: src/bgp/fixture_hot_path_alloc.cpp
// Fixture: allocation surfaces on the zero-alloc data plane. Paths must
// travel as interned topology::PathId handles (by-value AsPath copies a
// heap vector per hop) and bulk queries must fill caller-supplied scratch
// buffers (returning a vector allocates per call).
#include <vector>

namespace because::bgp {

void bad_path_by_value(AsPath path);  // expected: hot-path-alloc

void bad_qualified_path(topology::AsPath path, int hops);  // expected: hot-path-alloc

AsPath bad_returns_path(int from);  // expected: hot-path-alloc

std::vector<int> bad_returns_vector(int prefix);  // expected: hot-path-alloc

std::vector<std::pair<int, int>> bad_returns_nested(int as);  // expected: hot-path-alloc

void bad_local_path_copy() {
  AsPath scratch(16);  // expected: hot-path-alloc (per-call vector)
  (void)scratch;
}

// Clean alternatives: references in, scratch buffers out, handles by value.
void good_path_by_ref(const AsPath& path);
void good_fill_scratch(int prefix, std::vector<int>& out);
void good_member_scratch() {
  static std::vector<int> usable_scratch_;  // named buffer, no call-site paren
  usable_scratch_.clear();
}

}  // namespace because::bgp
