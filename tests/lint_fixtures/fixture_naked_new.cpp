// lint-as: src/experiment/fixture_naked_new.cpp
// Fixture: naked new/delete vs sanctioned ownership forms.
#include <memory>
#include <vector>

namespace because::experiment {

struct Payload {
  int x = 0;
};

Payload* bad_alloc_site() {
  return new Payload();  // expected: naked-new
}

void bad_free_site(Payload* p) {
  delete p;  // expected: naked-new
}

void bad_array_site(int* xs) {
  delete[] xs;  // expected: naked-new
}

std::unique_ptr<Payload> good_alloc_site() {
  return std::make_unique<Payload>();  // fine: ownership is explicit
}

// Deleted special members are not deallocations; must not be flagged.
struct Pinned {
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};

// Identifiers containing the keywords are fine: renew, news, deleted_count.
int renew(int news) { return news; }

}  // namespace because::experiment
