// lint-as: src/sim/fixture_wallclock.cpp
// Fixture: every flavour of wall-clock / libc randomness the wallclock rule
// must catch inside the deterministic simulator directories.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace because::sim {

long bad_now_chrono() {
  auto t = std::chrono::system_clock::now();  // expected: wallclock
  return t.time_since_epoch().count();
}

long bad_now_libc() {
  return time(nullptr);  // expected: wallclock
}

int bad_random() {
  srand(42);     // expected: wallclock
  return rand();  // expected: wallclock
}

// Negative cases the stripper must not flag: the words live in comments and
// strings. rand( and time( appear here: rand("x"), time("y").
const char* kDoc = "call time(nullptr) or rand() for chaos";
// std::chrono::system_clock in a comment only.

// Identifiers containing the banned names are fine:
long max_suppress_time(long ms) { return ms; }  // suffix `time` not `time(`
int grand(int x) { return x; }                  // `grand(` is not `rand(`

}  // namespace because::sim
