// lint-as: src/core/fixture_raw_simd.cpp
// Fixture: raw SIMD intrinsics outside the kernels module.
#include <immintrin.h>  // expected: raw-simd

namespace because::core {

double bad_intrinsic_call(const double* p) {
  __m256d v = _mm256_loadu_pd(p);  // expected: raw-simd (type and call)
  v = _mm256_mul_pd(v, v);         // expected: raw-simd
  double out[4];
  _mm256_storeu_pd(out, v);  // expected: raw-simd
  return out[0];
}

bool bad_mask_type() {
  __mmask8 m = 0;  // expected: raw-simd
  return m == 0;
}

double good_plain_loop(const double* p, unsigned long n) {
  // fine: scalar code; the autovectorizer may use SIMD, the source does not
  double acc = 0.0;
  for (unsigned long i = 0; i < n; ++i) acc += p[i];
  return acc;
}

}  // namespace because::core
