// Unit tests for the obs subsystem (ctest label: obs): metrics registry,
// sim-time tracing and the exporters. Determinism across pool sizes is
// locked down separately in obs_determinism_test; the golden trace digest
// in obs_trace_test. Everything here shares process-global obs state, so
// every test scopes enable/reset through ObsGuard.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace because {
namespace {

/// Enables metrics+tracing on a clean slate and disables both on exit, so
/// tests cannot leak enablement (or residue) into each other.
struct ObsGuard {
  ObsGuard() {
    obs::set_enabled(true);
    obs::reset();
    obs::set_trace_enabled(true);
    obs::trace_reset();
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset();
    obs::set_trace_enabled(false);
    obs::trace_reset();
  }
};

const obs::MetricsSnapshot::CounterRow* find_counter(
    const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const auto& row : snap.counters)
    if (row.name == name) return &row;
  return nullptr;
}

TEST(ObsMetrics, HistogramBucketEdges) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(7), 3u);
  EXPECT_EQ(obs::histogram_bucket(8), 4u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  // Values past the last bucket boundary clamp into the final bucket.
  EXPECT_EQ(obs::histogram_bucket(std::uint64_t{1} << 40),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket(~std::uint64_t{0}),
            obs::kHistogramBuckets - 1);
}

TEST(ObsMetrics, CatalogueOrderIsFixedAndRowsExistAtZero) {
  ObsGuard guard;
  const obs::MetricsSnapshot snap = obs::snapshot();
  // The catalogue (enum counters + pre-registered RFD variants) leads the
  // snapshot in registration order, all rows present even when untouched.
  ASSERT_GE(snap.counters.size(), obs::kCounterCount + 12);
  EXPECT_EQ(snap.counters[0].name, "sim.events.closure");
  EXPECT_EQ(snap.counters[1].name, "sim.events.bgp_delivery");
  EXPECT_EQ(
      snap.counters[static_cast<std::size_t>(obs::Counter::kCampaignEvents)]
          .name,
      "campaign.events");
  EXPECT_EQ(snap.counters[obs::kCounterCount].name, "rfd.suppressions.cisco-60");
  for (const auto& row : snap.counters) EXPECT_EQ(row.value, 0u);
  ASSERT_EQ(snap.gauges.size(), obs::kGaugeCount);
  EXPECT_EQ(snap.gauges[0].name, "mcmc.rhat.max");
  EXPECT_FALSE(snap.gauges[0].set);
  ASSERT_EQ(snap.histograms.size(), obs::kHistoCount);
  EXPECT_EQ(snap.histograms[0].name, "sim.queue_depth_pow2");
  EXPECT_EQ(snap.histograms[0].total, 0u);
}

TEST(ObsMetrics, CountersAccumulateAndResetZeroes) {
  ObsGuard guard;
  obs::add(obs::Counter::kSimSchedules);
  obs::add(obs::Counter::kSimSchedules, 41);
  obs::add(obs::Counter::kBgpSendsElided, 7);
  {
    const obs::MetricsSnapshot snap = obs::snapshot();
    EXPECT_EQ(find_counter(snap, "sim.schedules")->value, 42u);
    EXPECT_EQ(find_counter(snap, "bgp.sends_elided")->value, 7u);
  }
  obs::reset();
  const obs::MetricsSnapshot snap = obs::snapshot();
  EXPECT_EQ(find_counter(snap, "sim.schedules")->value, 0u);
  EXPECT_EQ(find_counter(snap, "bgp.sends_elided")->value, 0u);
}

TEST(ObsMetrics, DisabledCollectionIsANoOp) {
  ObsGuard guard;
  obs::set_enabled(false);
  obs::add(obs::Counter::kSimSchedules, 100);
  obs::add_named("rfd.suppressions.custom", 100);
  obs::observe(obs::Histo::kQueueDepth, 5);
  obs::set_gauge(obs::Gauge::kMcmcMaxRhat, 1.5);
  obs::set_enabled(true);
  const obs::MetricsSnapshot snap = obs::snapshot();
  EXPECT_EQ(find_counter(snap, "sim.schedules")->value, 0u);
  EXPECT_EQ(find_counter(snap, "rfd.suppressions.custom")->value, 0u);
  EXPECT_EQ(snap.histograms[0].total, 0u);
  EXPECT_FALSE(snap.gauges[0].set);
}

TEST(ObsMetrics, LateRegistrationsSortByNameAfterCatalogue) {
  ObsGuard guard;
  // Deliberately touch them in anti-alphabetical order; snapshot order must
  // not depend on first-touch order.
  obs::add_named("zz.obs_test.beta", 2);
  obs::add_named("zz.obs_test.alpha", 1);
  const obs::MetricsSnapshot snap = obs::snapshot();
  std::size_t alpha = 0, beta = 0;
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].name == "zz.obs_test.alpha") alpha = i;
    if (snap.counters[i].name == "zz.obs_test.beta") beta = i;
  }
  ASSERT_GT(alpha, 0u);
  ASSERT_GT(beta, 0u);
  EXPECT_LT(alpha, beta);
  EXPECT_GE(alpha, obs::kCounterCount);
  EXPECT_EQ(snap.counters[alpha].value, 1u);
  EXPECT_EQ(snap.counters[beta].value, 2u);
}

TEST(ObsMetrics, GaugeLastWriteWins) {
  ObsGuard guard;
  obs::set_gauge(obs::Gauge::kMcmcMaxRhat, 1.7);
  obs::set_gauge(obs::Gauge::kMcmcMaxRhat, 1.01);
  obs::set_gauge(obs::Gauge::kMcmcWorstEss, 250.5);
  const obs::MetricsSnapshot snap = obs::snapshot();
  EXPECT_TRUE(snap.gauges[0].set);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.01);
  EXPECT_TRUE(snap.gauges[1].set);
  EXPECT_DOUBLE_EQ(snap.gauges[1].value, 250.5);
}

TEST(ObsMetrics, HistogramObserveAndBucketFlush) {
  ObsGuard guard;
  obs::observe(obs::Histo::kQueueDepth, 0);
  obs::observe(obs::Histo::kQueueDepth, 1);
  obs::observe(obs::Histo::kQueueDepth, 3);
  obs::observe(obs::Histo::kQueueDepth, 3);
  obs::observe_bucket(obs::Histo::kQueueDepth, 5, 10);
  obs::observe_bucket(obs::Histo::kQueueDepth, 5, 0);  // no-op
  const obs::MetricsSnapshot snap = obs::snapshot();
  const auto& h = snap.histograms[0];
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[5], 10u);
  EXPECT_EQ(h.total, 14u);
}

TEST(ObsMetrics, ShardsMergeAcrossThreads) {
  ObsGuard guard;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::add(obs::Counter::kCampaignEvents);
        obs::observe(obs::Histo::kQueueDepth, i);
      }
    });
  for (std::thread& w : workers) w.join();
  const obs::MetricsSnapshot snap = obs::snapshot();
  EXPECT_EQ(find_counter(snap, "campaign.events")->value,
            kThreads * kPerThread);
  EXPECT_EQ(snap.histograms[0].total, kThreads * kPerThread);
}

TEST(ObsTrace, LaneScopeAndStableMergeOrder) {
  ObsGuard guard;
  obs::trace_instant("outer", 50, 1);
  {
    obs::TraceLaneScope lane(3);
    EXPECT_EQ(obs::trace_lane(), 3u);
    obs::trace_complete("cell", 0, 40);
    obs::trace_counter("depth", 10, 17);
  }
  EXPECT_EQ(obs::trace_lane(), 0u);
  obs::trace_instant("outer2", 20, 2);

  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Sorted by (lane, ts): lane 0 events first in ts order, then lane 3.
  EXPECT_EQ(events[0].name, "outer2");
  EXPECT_EQ(events[0].lane, 0u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[2].name, "cell");
  EXPECT_EQ(events[2].lane, 3u);
  EXPECT_EQ(events[2].ph, 'X');
  EXPECT_EQ(events[2].dur, 40);
  EXPECT_EQ(events[3].name, "depth");
  EXPECT_EQ(events[3].ph, 'C');
  EXPECT_EQ(events[3].value, 17);

  obs::trace_reset();
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST(ObsTrace, DisabledTracingEmitsNothing) {
  ObsGuard guard;
  obs::set_trace_enabled(false);
  obs::trace_instant("dropped", 1);
  obs::trace_complete("dropped", 0, 10);
  obs::set_trace_enabled(true);
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST(ObsExport, TableRendersAllSections) {
  ObsGuard guard;
  obs::add(obs::Counter::kSimSchedules, 9);
  obs::observe(obs::Histo::kQueueDepth, 3);
  const std::string table = obs::render_table(obs::snapshot());
  EXPECT_NE(table.find("obs counters"), std::string::npos);
  EXPECT_NE(table.find("sim.schedules"), std::string::npos);
  EXPECT_NE(table.find("obs gauges"), std::string::npos);
  EXPECT_NE(table.find("obs histogram: sim.queue_depth_pow2"),
            std::string::npos);
  EXPECT_NE(table.find("[2, 3]"), std::string::npos);
}

TEST(ObsExport, JsonIsDeterministicAndTyped) {
  ObsGuard guard;
  obs::add(obs::Counter::kSimSchedules, 12);
  obs::set_gauge(obs::Gauge::kMcmcMaxRhat, 1.25);
  const obs::MetricsSnapshot snap = obs::snapshot();
  const std::string a = obs::render_json(snap);
  const std::string b = obs::render_json(snap);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"sim.schedules\": 12"), std::string::npos);
  EXPECT_NE(a.find("\"mcmc.rhat.max\": 1.25"), std::string::npos);
  // Unset gauges serialize as null, and nothing reads the wallclock.
  EXPECT_NE(a.find("\"mcmc.ess.worst_coord\": null"), std::string::npos);
  EXPECT_EQ(a.find("exported_unix_ms"), std::string::npos);
}

TEST(ObsExport, WallclockStampOnlyWhenAsked) {
  ObsGuard guard;
  const std::string stamped =
      obs::render_json(obs::snapshot(), /*include_wallclock=*/true);
  EXPECT_NE(stamped.find("\"exported_unix_ms\": "), std::string::npos);
}

TEST(ObsExport, ChromeTraceMapsSimMillisToMicros) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"cell/a", 'X', 2, 5, 40, 0});
  events.push_back({"mark", 'i', 2, 7, 0, 3});
  const std::string json = obs::render_chrome_trace(events);
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cell/a\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":2,\"ts\":5000,\"dur\":40000"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":7000,"
                      "\"s\":\"t\",\"args\":{\"value\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ObsExport, WriteFileRoundTripsAndThrowsOnBadPath) {
  const std::string path = "obs_test_write_file.tmp";
  obs::write_file(path, "hello\nobs\n");
  std::string back;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[64];
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    back.assign(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());
  EXPECT_EQ(back, "hello\nobs\n");
  EXPECT_THROW(obs::write_file("no-such-dir/obs_test.tmp", "x"),
               std::runtime_error);
}

TEST(ObsLog, FormatJsonLineEscapes) {
  const std::string line = util::format_json_line(
      util::LogLevel::kWarn, "a \"quoted\"\nline\twith\x01" "ctl");
  EXPECT_EQ(line,
            "{\"level\":\"WARN\",\"msg\":"
            "\"a \\\"quoted\\\"\\nline\\twith\\u0001ctl\"}");
}

TEST(ObsLog, JsonSinkToggle) {
  // set_log_json overrides whatever BECAUSE_LOG_JSON said; restore off so
  // other tests' stderr stays human-readable.
  util::set_log_json(true);
  EXPECT_TRUE(util::log_json());
  util::set_log_json(false);
  EXPECT_FALSE(util::log_json());
}

}  // namespace
}  // namespace because
