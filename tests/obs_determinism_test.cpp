// Observability determinism across thread-pool sizes (ctest labels:
// obs, concurrency).
//
// The contract from DESIGN.md §5f: enabling metrics/tracing never perturbs
// simulation results, and the merged snapshots themselves are bit-identical
// no matter how many workers ran the campaign cells. Counters are
// commutative sums merged over thread-local shards; trace events carry a
// per-cell lane id and merge under a stable (lane, ts) sort — both rendered
// to JSON here and compared byte-for-byte at pool sizes 1, 4 and 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "experiment/parallel_runner.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace because {
namespace {

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t digest_result(const experiment::CampaignResult& result) {
  std::uint64_t hash = 14695981039346656037ULL;
  hash = fnv1a_u64(hash, result.events_executed);
  for (const collector::RecordedUpdate& rec : result.store.all()) {
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, bgp::pack(rec.update.prefix));
    const auto path = result.store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (topology::AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return hash;
}

experiment::CampaignGrid tiny_grid() {
  experiment::CampaignConfig base = experiment::CampaignConfig::small();
  base.pairs = 1;
  base.burst_length = sim::minutes(6);
  base.break_length = sim::minutes(20);
  base.anchor_cycles = 1;
  base.include_ripe_reference = false;
  experiment::CampaignGrid grid;
  grid.base = base;
  grid.seeds = {5, 6};
  grid.rfd_presets = experiment::standard_rfd_presets();
  return grid;
}

struct ObsGuard {
  ObsGuard() {
    obs::set_enabled(true);
    obs::reset();
    obs::set_trace_enabled(true);
    obs::trace_reset();
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset();
    obs::set_trace_enabled(false);
    obs::trace_reset();
  }
};

TEST(ObsDeterminism, SnapshotsBitIdenticalAcrossPoolSizes) {
  const std::vector<experiment::CampaignScenario> scenarios =
      tiny_grid().expand();
  ASSERT_EQ(scenarios.size(), 6u);

  std::string reference_metrics;
  std::string reference_trace;
  for (std::size_t threads : {1u, 4u, 8u}) {
    ObsGuard guard;
    experiment::ParallelCampaignRunner runner(threads);
    const std::vector<experiment::CampaignResult> results =
        runner.run(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());

    const std::string metrics_json = obs::render_json(obs::snapshot());
    const std::string trace_json =
        obs::render_chrome_trace(obs::trace_snapshot());
    if (reference_metrics.empty()) {
      reference_metrics = metrics_json;
      reference_trace = trace_json;
      // The run must actually have produced data, or the comparison below
      // is vacuous.
      EXPECT_NE(metrics_json.find("\"campaign.cells\": 6"), std::string::npos);
      EXPECT_NE(trace_json.find("campaign.run"), std::string::npos);
    } else {
      EXPECT_EQ(metrics_json, reference_metrics)
          << "metrics snapshot diverged at pool size " << threads;
      EXPECT_EQ(trace_json, reference_trace)
          << "trace snapshot diverged at pool size " << threads;
    }
  }
}

TEST(ObsDeterminism, CampaignDigestsUnchangedByInstrumentation) {
  const std::vector<experiment::CampaignScenario> scenarios =
      tiny_grid().expand();

  // Reference digests with collection fully off (the shipping default).
  std::vector<std::uint64_t> expected;
  for (const experiment::CampaignScenario& s : scenarios)
    expected.push_back(digest_result(experiment::run_campaign(s.config)));

  ObsGuard guard;
  experiment::ParallelCampaignRunner runner(4);
  const std::vector<experiment::CampaignResult> results =
      runner.run(scenarios);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(digest_result(results[i]), expected[i])
        << "instrumentation perturbed scenario " << scenarios[i].name;
  }
}

TEST(ObsDeterminism, WarmStartedSnapshotsBitIdenticalAcrossPoolSizes) {
  // Same contract as SnapshotsBitIdenticalAcrossPoolSizes, but with the
  // static warm start active, so the bgp.static.* counters and the
  // bgp.static.reach_pow2 histogram (all flushed inline from worker threads)
  // join the merge. Their shard sums must stay commutative and exact too.
  experiment::CampaignGrid grid = tiny_grid();
  grid.base.warm_start.mode = experiment::WarmStart::kStatic;
  grid.base.warm_start.baseline_prefixes = 2;
  const std::vector<experiment::CampaignScenario> scenarios = grid.expand();

  std::string reference_metrics;
  for (std::size_t threads : {1u, 4u, 8u}) {
    ObsGuard guard;
    experiment::ParallelCampaignRunner runner(threads);
    const std::vector<experiment::CampaignResult> results =
        runner.run(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());

    const obs::MetricsSnapshot snap = obs::snapshot();
    const std::string metrics_json = obs::render_json(snap);
    if (reference_metrics.empty()) {
      reference_metrics = metrics_json;
      // The warm-start counters must be present AND nonzero, or the
      // cross-pool comparison proves nothing about them.
      for (const char* name :
           {"bgp.static.up_visits", "bgp.static.across_visits",
            "bgp.static.down_visits", "bgp.static.seeded_routes"}) {
        bool found = false;
        for (const auto& row : snap.counters)
          if (row.name == name) {
            found = true;
            EXPECT_GT(row.value, 0u) << name << " stayed zero";
          }
        EXPECT_TRUE(found) << name << " missing from snapshot";
      }
      bool reach_found = false;
      for (const auto& histo : snap.histograms)
        if (histo.name == "bgp.static.reach_pow2") {
          reach_found = true;
          EXPECT_GT(histo.total, 0u) << "reach histogram stayed empty";
        }
      EXPECT_TRUE(reach_found) << "bgp.static.reach_pow2 missing";
    } else {
      EXPECT_EQ(metrics_json, reference_metrics)
          << "warm-started metrics snapshot diverged at pool size " << threads;
    }
  }
}

TEST(ObsDeterminism, ShardedSnapshotsBitIdenticalAcrossPoolSizes) {
  // The §5f contract extended to the sharded engine: with a FIXED shard
  // count, metrics and trace snapshots stay byte-identical no matter how
  // many pool workers ran the cells. Shard worker trace lanes derive from
  // the owning cell's lane (0x10000 + cell * 64 + shard), not from which
  // pool thread ran the cell, so even the raw Chrome trace is stable.
  experiment::CampaignGrid grid = tiny_grid();
  grid.base.shards = 2;
  const std::vector<experiment::CampaignScenario> scenarios = grid.expand();

  std::string reference_metrics;
  std::string reference_trace;
  for (std::size_t threads : {1u, 4u, 8u}) {
    ObsGuard guard;
    experiment::ParallelCampaignRunner runner(threads);
    const std::vector<experiment::CampaignResult> results =
        runner.run(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());

    const std::string metrics_json = obs::render_json(obs::snapshot());
    const std::string trace_json =
        obs::render_chrome_trace(obs::trace_snapshot());
    if (reference_metrics.empty()) {
      reference_metrics = metrics_json;
      reference_trace = trace_json;
      EXPECT_NE(metrics_json.find("topo.partition.cut_edges"),
                std::string::npos);
      EXPECT_NE(trace_json.find("campaign.run"), std::string::npos);
    } else {
      EXPECT_EQ(metrics_json, reference_metrics)
          << "sharded metrics snapshot diverged at pool size " << threads;
      EXPECT_EQ(trace_json, reference_trace)
          << "sharded trace snapshot diverged at pool size " << threads;
    }
  }
}

/// Counters that legitimately depend on the shard count: calendar-structure
/// internals (per-queue bucket geometry), the per-queue depth histogram,
/// the partitioner's own diagnostics, and the path-table dedup tallies
/// (K tables intern overlapping path sets). Everything else must be equal
/// at every shard count.
bool shard_scoped_metric(const std::string& name) {
  for (const char* prefix :
       {"sim.cal.", "sim.queue_depth", "topo.partition.", "bgp.paths.dedup"}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(ObsDeterminism, ShardCountOnlyPerturbsShardScopedMetrics) {
  // Cross-K: simulation-semantic counters (events executed by kind, BGP
  // sends, RFD transitions, collector tallies, ...) are a function of the
  // campaign, not of the partition. Trace events lose only their lane
  // (which encodes the executing shard) — name/ts/dur/value multisets match.
  const experiment::CampaignGrid grid = tiny_grid();
  const std::vector<experiment::CampaignScenario> scenarios = grid.expand();

  std::vector<std::pair<std::string, std::uint64_t>> reference_counters;
  std::vector<std::tuple<std::string, char, sim::Time, sim::Duration,
                         std::int64_t>>
      reference_trace;
  for (const std::uint32_t shards : {1u, 4u}) {
    ObsGuard guard;
    std::vector<experiment::CampaignScenario> sharded = scenarios;
    for (experiment::CampaignScenario& s : sharded) s.config.shards = shards;
    experiment::ParallelCampaignRunner runner(4);
    runner.run(sharded);

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const auto& row : obs::snapshot().counters) {
      if (!shard_scoped_metric(row.name)) counters.emplace_back(row.name, row.value);
    }
    std::sort(counters.begin(), counters.end());

    std::vector<std::tuple<std::string, char, sim::Time, sim::Duration,
                           std::int64_t>>
        trace;
    for (const obs::TraceEvent& event : obs::trace_snapshot()) {
      trace.emplace_back(event.name, event.ph, event.ts, event.dur,
                         event.value);
    }
    std::sort(trace.begin(), trace.end());

    if (reference_counters.empty()) {
      reference_counters = std::move(counters);
      reference_trace = std::move(trace);
      ASSERT_FALSE(reference_counters.empty());
    } else {
      EXPECT_EQ(counters, reference_counters)
          << "semantic counters diverged at " << shards << " shards";
      EXPECT_EQ(trace, reference_trace)
          << "lane-normalized trace diverged at " << shards << " shards";
    }
  }
}

TEST(ObsDeterminism, RepeatedRunsYieldIdenticalSnapshots) {
  const std::vector<experiment::CampaignScenario> scenarios =
      tiny_grid().expand();
  std::string first;
  for (int round = 0; round < 2; ++round) {
    ObsGuard guard;
    experiment::ParallelCampaignRunner runner(4);
    runner.run(scenarios);
    const std::string json = obs::render_json(obs::snapshot());
    if (round == 0)
      first = json;
    else
      EXPECT_EQ(json, first);
  }
}

}  // namespace
}  // namespace because
