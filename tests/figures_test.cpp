// Direct unit tests for the figure-extraction helpers, on hand-built
// campaign results (the campaign-driven behaviour is covered by
// campaign_test.cpp; these pin the arithmetic).
#include <gtest/gtest.h>

#include "experiment/figures.hpp"

namespace because::experiment {
namespace {

labeling::LabeledPath make_labeled(collector::VpId vp, std::uint32_t prefix_id,
                                   topology::AsPath path, bool rfd,
                                   std::vector<double> rdeltas = {}) {
  labeling::LabeledPath p;
  p.vp = vp;
  p.prefix = bgp::Prefix{prefix_id, 24};
  p.path = std::move(path);
  p.rfd = rfd;
  p.rdeltas_minutes = std::move(rdeltas);
  return p;
}

BeaconDeployment make_beacon(std::uint32_t prefix_id, std::size_t site_index,
                             topology::AsId site, sim::Duration interval) {
  BeaconDeployment b;
  b.prefix = bgp::Prefix{prefix_id, 24};
  b.site_index = site_index;
  b.site = site;
  b.update_interval = interval;
  return b;
}

TEST(FiguresUnit, LinkSimilarityCountsSharedLinks) {
  CampaignResult campaign;
  campaign.sites = {900, 901};
  campaign.beacons.push_back(make_beacon(1, 0, 900, sim::minutes(1)));
  campaign.beacons.push_back(make_beacon(2, 1, 901, sim::minutes(1)));

  // Site 0 sees links (10,20) and (20,900); site 1 sees (10,20), (20,901).
  campaign.labeled.push_back(make_labeled(0, 1, {10, 20, 900}, false));
  campaign.labeled.push_back(make_labeled(0, 2, {10, 20, 901}, false));

  const LinkSimilarity sim = link_similarity(campaign);
  EXPECT_EQ(sim.total_links, 3u);  // (10,20), (20,900), (20,901)
  ASSERT_EQ(sim.share_per_site.size(), 2u);
  EXPECT_NEAR(sim.share_per_site[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sim.share_per_site[1], 2.0 / 3.0, 1e-12);
  // Link (10,20) appears on 2 paths; the others on 1 -> median 1.
  EXPECT_NEAR(sim.median_paths_per_link_all, 1.0, 1e-12);
}

TEST(FiguresUnit, LinkSimilarityEmptyCampaign) {
  CampaignResult campaign;
  campaign.sites = {900};
  const LinkSimilarity sim = link_similarity(campaign);
  EXPECT_EQ(sim.total_links, 0u);
  EXPECT_DOUBLE_EQ(sim.share_per_site[0], 0.0);
}

TEST(FiguresUnit, RdeltaByIntervalBucketsAndFilters) {
  CampaignResult campaign;
  campaign.beacons.push_back(make_beacon(1, 0, 900, sim::minutes(1)));
  campaign.beacons.push_back(make_beacon(2, 0, 900, sim::minutes(3)));

  campaign.labeled.push_back(
      make_labeled(0, 1, {10, 900}, true, {58.0, 59.0}));
  campaign.labeled.push_back(make_labeled(0, 2, {10, 900}, true, {30.0}));
  campaign.labeled.push_back(
      make_labeled(0, 1, {11, 900}, false, {}));  // clean: excluded
  campaign.labeled.push_back(
      make_labeled(0, 99, {12, 900}, true, {10.0}));  // unknown prefix: excluded

  const auto buckets = rdelta_by_interval(campaign);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets.at(sim::minutes(1)), (std::vector<double>{58.0, 59.0}));
  EXPECT_EQ(buckets.at(sim::minutes(3)), (std::vector<double>{30.0}));
}

TEST(FiguresUnit, ProjectOverlapBuckets) {
  CampaignResult campaign;
  // Three VPs in three projects; two of them are the same AS (id differs).
  const auto ris = campaign.store.register_vp(100, collector::Project::kRipeRis, 0);
  const auto rv = campaign.store.register_vp(100, collector::Project::kRouteViews, 0);
  const auto iso = campaign.store.register_vp(200, collector::Project::kIsolario, 0);

  // Same (prefix, path) seen by RIS and RouteViews; a second path only ISO.
  campaign.labeled.push_back(make_labeled(ris, 1, {100, 10}, false));
  campaign.labeled.push_back(make_labeled(rv, 1, {100, 10}, false));
  campaign.labeled.push_back(make_labeled(iso, 1, {200, 10}, false));

  const ProjectOverlap overlap = project_overlap(campaign);
  EXPECT_EQ(overlap.ris_routeviews, 1u);
  EXPECT_EQ(overlap.only_isolario, 1u);
  EXPECT_EQ(overlap.all_three, 0u);
  EXPECT_EQ(overlap.total(), 2u);
}

TEST(FiguresUnit, DampingShareEmpty) {
  EXPECT_DOUBLE_EQ(damping_share({}), 0.0);
}

TEST(FiguresUnit, CategoryCountsAllLevels) {
  std::vector<core::Category> cats;
  for (int c = 1; c <= 5; ++c)
    for (int k = 0; k < c; ++k)
      cats.push_back(static_cast<core::Category>(c));
  const auto counts = category_counts(cats);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(counts[c], c + 1);
  EXPECT_NEAR(damping_share(cats), 9.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace because::experiment
