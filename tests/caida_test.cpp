// CAIDA serial-2 loader tests: accepted grammar, derived tiers, canonical
// serialisation round-trips, obs counters, and — because silent skips would
// poison every downstream experiment — contract failures on every malformed
// input class (bad field counts, non-numeric AS numbers, unknown relationship
// codes, self-loops, duplicate/conflicting edges, unopenable files).
#include "topology/caida.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "topology/generator.hpp"
#include "topology/ranking.hpp"
#include "util/contracts.hpp"

namespace because::topology {
namespace {

using util::ContractMode;
using util::ContractViolation;
using util::ScopedContractMode;

constexpr const char* kSample =
    "# comment header\n"
    "10|20|0|bgp\n"
    "10|30|-1|bgp\n"
    "20|30|-1\n"
    "30|40|-1\n"
    "30|50|-1\n"
    "40|50|0\n";

TEST(CaidaLoader, ParsesSampleAndDerivesTiers) {
  const AsGraph graph = load_caida_text(kSample);
  EXPECT_EQ(graph.as_count(), 5u);
  EXPECT_EQ(graph.link_count(), 6u);

  // No providers -> tier-1; providers but no customers -> stub; both ->
  // transit.
  EXPECT_EQ(graph.tier(10), Tier::kTier1);
  EXPECT_EQ(graph.tier(20), Tier::kTier1);
  EXPECT_EQ(graph.tier(30), Tier::kTransit);
  EXPECT_EQ(graph.tier(40), Tier::kStub);
  EXPECT_EQ(graph.tier(50), Tier::kStub);

  EXPECT_TRUE(graph.has_link(10, 20));
  EXPECT_TRUE(graph.has_link(30, 40));
  EXPECT_FALSE(graph.has_link(10, 40));
  // Relationship directions as seen from each endpoint.
  bool found = false;
  for (const Neighbor& nb : graph.neighbors(40))
    if (nb.id == 30) {
      EXPECT_EQ(nb.relation, Relation::kProvider);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(CaidaLoader, FixtureFileLoadsAndMatchesInlineSample) {
  const AsGraph from_file =
      load_caida_file(std::string(BECAUSE_TEST_DIR) + "/fixtures/caida_sample.txt");
  const AsGraph from_text = load_caida_text(kSample);
  EXPECT_EQ(to_caida_text(from_file), to_caida_text(from_text));
}

TEST(CaidaLoader, HandlesCrlfAndBlankLines) {
  const AsGraph graph = load_caida_text("# c\r\n\r\n10|20|-1\r\n\n20|30|-1\n");
  EXPECT_EQ(graph.as_count(), 3u);
  EXPECT_EQ(graph.tier(10), Tier::kTier1);
  EXPECT_EQ(graph.tier(20), Tier::kTransit);
  EXPECT_EQ(graph.tier(30), Tier::kStub);
}

TEST(CaidaLoader, RoundTripsThroughCanonicalText) {
  const AsGraph graph = load_caida_text(kSample);
  const std::string text = to_caida_text(graph);
  const AsGraph reloaded = load_caida_text(text);
  EXPECT_EQ(reloaded.as_count(), graph.as_count());
  EXPECT_EQ(reloaded.link_count(), graph.link_count());
  // The canonical rendering is a pure function of the graph, so a reload
  // re-renders to identical bytes.
  EXPECT_EQ(to_caida_text(reloaded), text);
}

TEST(CaidaLoader, GeneratedGraphRoundTripsAdjacency) {
  stats::Rng rng(7);
  const AsGraph generated = generate(internet_like(500), rng);
  const AsGraph reloaded = load_caida_text(to_caida_text(generated));
  EXPECT_EQ(reloaded.as_count(), generated.as_count());
  EXPECT_EQ(reloaded.link_count(), generated.link_count());
  EXPECT_EQ(to_caida_text(reloaded), to_caida_text(generated));
  // Derived ranks agree with the generated hierarchy's (the DAG structure
  // round-trips even though tiers are re-derived from the edges).
  const HierarchyRanking a = rank_hierarchy(generated);
  const HierarchyRanking b = rank_hierarchy(reloaded);
  EXPECT_EQ(a.rank, b.rank);
}

TEST(CaidaLoader, CountsLoadObservability) {
  obs::reset();
  obs::set_enabled(true);
  (void)load_caida_text(kSample);
  obs::set_enabled(false);
  const obs::MetricsSnapshot snap = obs::snapshot();
  std::uint64_t p2c = 0, p2p = 0, comments = 0;
  for (const auto& row : snap.counters) {
    if (row.name == "topology.load.p2c") p2c = row.value;
    if (row.name == "topology.load.p2p") p2p = row.value;
    if (row.name == "topology.load.comments") comments = row.value;
  }
  EXPECT_EQ(p2c, 4u);
  EXPECT_EQ(p2p, 2u);
  EXPECT_EQ(comments, 1u);
  obs::reset();
}

// -- Malformed input is a contract violation, never a silent skip ----------

TEST(CaidaLoaderContract, RejectsBadFieldCount) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(load_caida_text("10|20\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|20|-1|bgp|extra\n"), ContractViolation);
}

TEST(CaidaLoaderContract, RejectsNonNumericAsNumbers) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(load_caida_text("AS10|20|-1\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|twenty|-1\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("|20|-1\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|20x|-1\n"), ContractViolation);
  // Larger than 32 bits.
  EXPECT_THROW(load_caida_text("4294967296|20|-1\n"), ContractViolation);
}

TEST(CaidaLoaderContract, RejectsUnknownRelationshipCodes) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(load_caida_text("10|20|1\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|20|-2\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|20|p2c\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|20|\n"), ContractViolation);
}

TEST(CaidaLoaderContract, RejectsSelfLoops) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(load_caida_text("10|10|-1\n"), ContractViolation);
  EXPECT_THROW(load_caida_text("10|10|0\n"), ContractViolation);
}

TEST(CaidaLoaderContract, RejectsDuplicateAndConflictingEdges) {
  ScopedContractMode guard(ContractMode::kThrow);
  // Exact duplicate.
  EXPECT_THROW(load_caida_text("10|20|-1\n10|20|-1\n"), ContractViolation);
  // Same link, reversed orientation.
  EXPECT_THROW(load_caida_text("10|20|-1\n20|10|-1\n"), ContractViolation);
  // Conflicting relationship for the same link.
  EXPECT_THROW(load_caida_text("10|20|-1\n10|20|0\n"), ContractViolation);
}

TEST(CaidaLoaderContract, RejectsUnopenableFile) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(load_caida_file("/nonexistent/никогда/rel.txt"),
               ContractViolation);
}

TEST(CaidaLoaderContract, CycleIsRejectedByRanking) {
  // The loader accepts a provider-customer cycle (the file grammar allows
  // it); rank_hierarchy is the contract boundary that rejects it.
  const AsGraph graph = load_caida_text("10|20|-1\n20|30|-1\n30|10|-1\n");
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(rank_hierarchy(graph), ContractViolation);
}

TEST(HierarchyRanking, RanksSampleBottomUp) {
  const AsGraph graph = load_caida_text(kSample);
  const HierarchyRanking ranking = rank_hierarchy(graph);
  EXPECT_EQ(ranking.rank_of(40), 0u);
  EXPECT_EQ(ranking.rank_of(50), 0u);
  EXPECT_EQ(ranking.rank_of(30), 1u);
  EXPECT_EQ(ranking.rank_of(10), 2u);
  EXPECT_EQ(ranking.rank_of(20), 2u);
  EXPECT_EQ(ranking.max_rank, 2u);
  // Sweep order: (rank, id) ascending.
  ASSERT_EQ(ranking.order.size(), 5u);
  EXPECT_EQ(ranking.ids[ranking.order[0]], 40u);
  EXPECT_EQ(ranking.ids[ranking.order[1]], 50u);
  EXPECT_EQ(ranking.ids[ranking.order[2]], 30u);
  EXPECT_EQ(ranking.ids[ranking.order[3]], 10u);
  EXPECT_EQ(ranking.ids[ranking.order[4]], 20u);
}

}  // namespace
}  // namespace because::topology
