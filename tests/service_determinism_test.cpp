// The becaused determinism bar: a fixed ingestion schedule plus a fixed
// query script must produce byte-identical responses and snapshots at ANY
// thread-pool size (chains run in parallel but are seeded per index and
// merged in index order, so the worker count never leaks into the draws).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment/campaign.hpp"
#include "service/daemon.hpp"
#include "util/thread_pool.hpp"

namespace because::service {
namespace {

const experiment::CampaignResult& shared_campaign() {
  static const experiment::CampaignResult result = [] {
    experiment::CampaignConfig config = experiment::CampaignConfig::small();
    config.seed = 31337;
    return run_campaign(config);
  }();
  return result;
}

struct ScriptResult {
  std::vector<std::string> responses;
  std::string snapshot;
};

/// The fixed script: load, replay half, query two prefixes (cold), replay
/// the rest, re-query (refresh), reconfigure, query again (cold rebuild),
/// then snapshot.
ScriptResult run_script(util::ThreadPool* pool) {
  ScriptResult out;
  Daemon daemon(ServiceConfig::fast(), pool);
  daemon.load_campaign(shared_campaign());
  const std::size_t half = shared_campaign().store.size() / 2;
  daemon.replay(shared_campaign().store, 0, half);

  const bgp::Prefix p0 = shared_campaign().beacons.at(0).prefix;
  const bgp::Prefix p1 = shared_campaign().beacons.at(1).prefix;
  out.responses.push_back(render(daemon.query(p0)));
  out.responses.push_back(render(daemon.query(p1)));

  daemon.replay(shared_campaign().store, half);
  out.responses.push_back(render(daemon.query(p0)));
  out.responses.push_back(render(daemon.query(p1)));

  ServiceConfig next = ServiceConfig::fast();
  next.refresh_samples += 4;
  daemon.stage(next);
  daemon.commit();
  out.responses.push_back(render(daemon.query(p0)));

  out.snapshot = daemon.save_snapshot();
  return out;
}

TEST(ServiceDeterminism, ByteIdenticalAcrossPoolSizes) {
  const ScriptResult serial = run_script(nullptr);
  ASSERT_EQ(serial.responses.size(), 5u);
  EXPECT_FALSE(serial.snapshot.empty());

  for (const std::size_t threads : {1u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const ScriptResult pooled = run_script(&pool);
    ASSERT_EQ(pooled.responses.size(), serial.responses.size())
        << threads << " threads";
    for (std::size_t i = 0; i < serial.responses.size(); ++i)
      EXPECT_EQ(pooled.responses[i], serial.responses[i])
          << "response " << i << " at " << threads << " threads";
    EXPECT_TRUE(pooled.snapshot == serial.snapshot)
        << "snapshot diverged at " << threads << " threads";
  }
}

TEST(ServiceDeterminism, RenderedSourcesFollowTheScript) {
  // Sanity on the script itself: cold, cold, refresh, refresh, cold.
  const ScriptResult r = run_script(nullptr);
  EXPECT_NE(r.responses[0].find("source cold"), std::string::npos);
  EXPECT_NE(r.responses[1].find("source cold"), std::string::npos);
  EXPECT_NE(r.responses[2].find("source refreshed"), std::string::npos);
  EXPECT_NE(r.responses[3].find("source refreshed"), std::string::npos);
  EXPECT_NE(r.responses[4].find("source cold"), std::string::npos);
}

}  // namespace
}  // namespace because::service
