#include <gtest/gtest.h>

#include "labeling/dataset.hpp"

namespace because::labeling {
namespace {

TEST(Dataset, InternsAsesDensely) {
  PathDataset d;
  d.add_path({10, 20, 30}, true);
  d.add_path({20, 40}, false);
  EXPECT_EQ(d.as_count(), 4u);
  EXPECT_EQ(d.path_count(), 2u);
  EXPECT_TRUE(d.index_of(20).has_value());
  EXPECT_FALSE(d.index_of(99).has_value());
  EXPECT_EQ(d.as_at(*d.index_of(10)), 10u);
}

TEST(Dataset, ObservationsPreserveLabels) {
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 30}, false);
  ASSERT_EQ(d.observations().size(), 2u);
  EXPECT_TRUE(d.observations()[0].shows_property);
  EXPECT_FALSE(d.observations()[1].shows_property);
}

TEST(Dataset, ExcludeDropsAses) {
  PathDataset d;
  d.add_path({10, 20, 30}, true, {20});
  EXPECT_EQ(d.as_count(), 2u);
  EXPECT_FALSE(d.index_of(20).has_value());
  EXPECT_EQ(d.observations()[0].nodes.size(), 2u);
}

TEST(Dataset, FullyExcludedPathIgnored) {
  PathDataset d;
  d.add_path({10}, true, {10});
  EXPECT_EQ(d.path_count(), 0u);
  EXPECT_EQ(d.as_count(), 0u);
}

TEST(Dataset, DuplicateAsesOnPathCollapsed) {
  PathDataset d;
  d.add_path({10, 20, 10}, true);  // pathological, but must not double-count
  ASSERT_EQ(d.observations().size(), 1u);
  EXPECT_EQ(d.observations()[0].nodes.size(), 2u);
}

TEST(Dataset, PerNodeIndices) {
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 30}, false);
  d.add_path({40}, true);
  const auto node10 = *d.index_of(10);
  const auto& with10 = d.observations_with(node10);
  EXPECT_EQ(with10, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(d.property_paths(node10), 1u);
  EXPECT_EQ(d.clean_paths(node10), 1u);

  const auto node40 = *d.index_of(40);
  EXPECT_EQ(d.property_paths(node40), 1u);
  EXPECT_EQ(d.clean_paths(node40), 0u);
}

TEST(Dataset, ContradictoryLabelsBothKept) {
  // The same path can be measured RFD in one experiment and clean in
  // another (inconsistent damping); both observations must persist.
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 20}, false);
  EXPECT_EQ(d.path_count(), 2u);
  const auto node = *d.index_of(10);
  EXPECT_EQ(d.property_paths(node), 1u);
  EXPECT_EQ(d.clean_paths(node), 1u);
}

TEST(Dataset, EmptyDataset) {
  PathDataset d;
  EXPECT_EQ(d.as_count(), 0u);
  EXPECT_EQ(d.path_count(), 0u);
}

}  // namespace
}  // namespace because::labeling
