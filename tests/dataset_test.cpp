#include <gtest/gtest.h>

#include <vector>

#include "labeling/dataset.hpp"

namespace because::labeling {
namespace {

TEST(Dataset, InternsAsesDensely) {
  PathDataset d;
  d.add_path({10, 20, 30}, true);
  d.add_path({20, 40}, false);
  EXPECT_EQ(d.as_count(), 4u);
  EXPECT_EQ(d.path_count(), 2u);
  EXPECT_TRUE(d.index_of(20).has_value());
  EXPECT_FALSE(d.index_of(99).has_value());
  EXPECT_EQ(d.as_at(*d.index_of(10)), 10u);
}

TEST(Dataset, ObservationsPreserveLabels) {
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 30}, false);
  ASSERT_EQ(d.path_count(), 2u);
  EXPECT_TRUE(d.shows_property(0));
  EXPECT_FALSE(d.shows_property(1));
  // The packed bitmap agrees with the per-observation accessor.
  ASSERT_EQ(d.label_bits().size(), 1u);
  EXPECT_EQ(d.label_bits()[0], 0b01u);
}

TEST(Dataset, ExcludeDropsAses) {
  PathDataset d;
  d.add_path({10, 20, 30}, true, {20});
  EXPECT_EQ(d.as_count(), 2u);
  EXPECT_FALSE(d.index_of(20).has_value());
  EXPECT_EQ(d.path_nodes(0).size(), 2u);
}

TEST(Dataset, FullyExcludedPathIgnored) {
  PathDataset d;
  d.add_path({10}, true, {10});
  EXPECT_EQ(d.path_count(), 0u);
  EXPECT_EQ(d.as_count(), 0u);
}

TEST(Dataset, DuplicateAsesOnPathCollapsed) {
  PathDataset d;
  d.add_path({10, 20, 10}, true);  // pathological, but must not double-count
  ASSERT_EQ(d.path_count(), 1u);
  EXPECT_EQ(d.path_nodes(0).size(), 2u);
}

TEST(Dataset, CsrLayoutIsFlatAndContiguous) {
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({20, 30, 40}, false);
  const auto offsets = d.flat_offsets();
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 2u);
  EXPECT_EQ(offsets[2], 5u);
  const auto nodes = d.flat_nodes();
  ASSERT_EQ(nodes.size(), 5u);
  // path_nodes slices alias the flat array.
  EXPECT_EQ(d.path_nodes(1).data(), nodes.data() + 2);
}

TEST(Dataset, PerNodeIndices) {
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 30}, false);
  d.add_path({40}, true);
  const auto node10 = *d.index_of(10);
  const auto with10 = d.observations_with(node10);
  ASSERT_EQ(with10.size(), 2u);
  EXPECT_EQ(with10[0], 0u);
  EXPECT_EQ(with10[1], 1u);
  EXPECT_EQ(d.property_paths(node10), 1u);
  EXPECT_EQ(d.clean_paths(node10), 1u);

  const auto node40 = *d.index_of(40);
  EXPECT_EQ(d.property_paths(node40), 1u);
  EXPECT_EQ(d.clean_paths(node40), 0u);
}

TEST(Dataset, TransposedCsrRebuildsAfterLaterAdds) {
  PathDataset d;
  d.add_path({10, 20}, true);
  ASSERT_EQ(d.observations_with(*d.index_of(10)).size(), 1u);  // builds CSR
  d.add_path({10, 30}, false);  // invalidates it
  const auto with10 = d.observations_with(*d.index_of(10));
  ASSERT_EQ(with10.size(), 2u);
  EXPECT_EQ(with10[0], 0u);
  EXPECT_EQ(with10[1], 1u);
  EXPECT_EQ(d.observations_with(*d.index_of(30)).size(), 1u);
}

TEST(Dataset, CopyAndMovePreserveLayout) {
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({20, 30}, false);
  (void)d.observations_with(0);  // force the transposed CSR

  PathDataset copy = d;
  EXPECT_EQ(copy.path_count(), 2u);
  EXPECT_TRUE(copy.shows_property(0));
  EXPECT_EQ(copy.observations_with(*copy.index_of(20)).size(), 2u);

  PathDataset moved = std::move(copy);
  EXPECT_EQ(moved.path_count(), 2u);
  EXPECT_EQ(moved.observations_with(*moved.index_of(20)).size(), 2u);
}

TEST(Dataset, ContradictoryLabelsBothKept) {
  // The same path can be measured RFD in one experiment and clean in
  // another (inconsistent damping); both observations must persist.
  PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({10, 20}, false);
  EXPECT_EQ(d.path_count(), 2u);
  const auto node = *d.index_of(10);
  EXPECT_EQ(d.property_paths(node), 1u);
  EXPECT_EQ(d.clean_paths(node), 1u);
}

TEST(Dataset, EmptyDataset) {
  PathDataset d;
  EXPECT_EQ(d.as_count(), 0u);
  EXPECT_EQ(d.path_count(), 0u);
}

}  // namespace
}  // namespace because::labeling
