// Static warm-start validation (the PR's headline suite).
//
// static_converge() promises the converged state a fully drained dynamic
// cascade would reach, without paying the event costs. These tests pin that
// promise from four directions:
//
//   1. Hand-checked diamonds: the three phases, back-to-source withholding,
//      the ACROSS round, and ROV import drops, all on graphs small enough to
//      verify on paper.
//   2. Properties on randomized topologies: every converged path is loop-free
//      and valley-free, and a stub-originated prefix reaches ~everyone.
//   3. Static-vs-dynamic Loc-RIB agreement on a generated graph (dynamic
//      path hunting can leave "ghost" Adj-RIB-In entries — a loop-dropped
//      announcement does not withdraw its predecessor — so agreement is
//      asserted at >= 99%, not bit-exact; the campaign-level digest below is
//      the bit-exact contract).
//   4. The equivalence test: a campaign warm-started statically reproduces
//      the dynamically warm-started campaign's beacon-delta collector digest
//      BIT-FOR-BIT (records with prefix.id < kBaselinePrefixBase), with MRAI
//      jitter disabled so dynamic convergence consumes no RNG (DESIGN.md
//      §5h). Background churn stays enabled to prove per-prefix isolation.
//
// Plus the Leyba-style structure check: per-VP link visibility is partial
// and grows with the VP set, which is what makes the paper's tomography
// problem nontrivial.
#include "bgp/static_converge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "bgp/network.hpp"
#include "experiment/campaign.hpp"
#include "sim/event_queue.hpp"
#include "stats/rng.hpp"
#include "topology/generator.hpp"
#include "topology/paths.hpp"

namespace because {
namespace {

using bgp::Prefix;
using bgp::StaticOrigin;
using topology::AsGraph;
using topology::AsId;
using topology::AsPath;
using topology::Tier;

// The full observer-side AS path of `as`'s selected route: [as] followed by
// the stored route path (which excludes the owner), BGP order down to the
// origin.
AsPath full_path(const bgp::Network& network, AsId as, const Prefix& prefix) {
  const bgp::Selected* sel = network.router(as).loc_rib().find(prefix);
  if (sel == nullptr) return {};
  AsPath path = network.paths()->to_path(sel->route.path);
  path.insert(path.begin(), as);
  return path;
}

// --------------------------------------------------------------------------
// 1. Hand-checked diamonds.

// 1 (tier-1) provides for 2 and 3; both provide for origin 4.
AsGraph diamond() {
  AsGraph g;
  g.add_as(1, Tier::kTier1);
  g.add_as(2, Tier::kTransit);
  g.add_as(3, Tier::kTransit);
  g.add_as(4, Tier::kStub);
  g.add_provider_customer(1, 2);
  g.add_provider_customer(1, 3);
  g.add_provider_customer(2, 4);
  g.add_provider_customer(3, 4);
  return g;
}

TEST(StaticConverge, DiamondConvergesToHandComputedState) {
  const AsGraph graph = diamond();
  sim::EventQueue queue;
  stats::Rng rng(1);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  const Prefix prefix{7, 24};
  const bgp::StaticConvergeStats stats =
      bgp::static_converge(network, {{4, prefix, 0}});

  // One sweep visit per AS per phase, for one prefix.
  EXPECT_EQ(stats.up_visits, 4u);
  EXPECT_EQ(stats.across_visits, 4u);
  EXPECT_EQ(stats.down_visits, 4u);
  EXPECT_EQ(stats.reachable_ases, 4u);

  // 2 and 3 pick their customer route; 1 tie-breaks its two equal-length
  // customer routes on the lowest neighbor id.
  EXPECT_EQ(full_path(network, 4, prefix), (AsPath{4}));
  EXPECT_EQ(full_path(network, 2, prefix), (AsPath{2, 4}));
  EXPECT_EQ(full_path(network, 3, prefix), (AsPath{3, 4}));
  EXPECT_EQ(full_path(network, 1, prefix), (AsPath{1, 2, 4}));
  ASSERT_NE(network.router(1).loc_rib().find(prefix), nullptr);
  EXPECT_EQ(network.router(1).loc_rib().find(prefix)->neighbor,
            std::optional<AsId>(2));

  // Back-to-source: 1's best came from 2, so 1 exports nothing down to 2 —
  // but it does export its best down to 3, where the customer route wins.
  EXPECT_EQ(network.router(2).adj_rib_in().find(1, prefix), nullptr);
  const bgp::AdjRibInEntry* down = network.router(3).adj_rib_in().find(1, prefix);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(network.paths()->to_path(down->route.path), (AsPath{1, 2, 4}));
}

TEST(StaticConverge, AcrossPhaseCarriesPeerRoutes) {
  // 1 provides for 2 and 3; 2 provides for origin 4; 2--3 peer. 3's only
  // routes are the peer route [2 4] and the provider route [1 2 4]; the peer
  // route must win (Gao-Rexford pref), proving the ACROSS round ran.
  AsGraph g;
  g.add_as(1, Tier::kTier1);
  g.add_as(2, Tier::kTransit);
  g.add_as(3, Tier::kTransit);
  g.add_as(4, Tier::kStub);
  g.add_provider_customer(1, 2);
  g.add_provider_customer(1, 3);
  g.add_provider_customer(2, 4);
  g.add_peering(2, 3);

  sim::EventQueue queue;
  stats::Rng rng(1);
  bgp::Network network(g, bgp::NetworkConfig{}, queue, rng);
  const Prefix prefix{7, 24};
  bgp::static_converge(network, {{4, prefix, 0}});

  EXPECT_EQ(full_path(network, 3, prefix), (AsPath{3, 2, 4}));
  ASSERT_NE(network.router(3).loc_rib().find(prefix), nullptr);
  EXPECT_EQ(network.router(3).loc_rib().find(prefix)->neighbor,
            std::optional<AsId>(2));
  // A peer-learned route is never re-exported upward: 1 must not hold a
  // route from 3.
  EXPECT_EQ(network.router(1).adj_rib_in().find(3, prefix), nullptr);
}

TEST(StaticConverge, RovInvalidPrefixIsDroppedOnImport) {
  const AsGraph graph = diamond();
  sim::EventQueue queue;
  stats::Rng rng(1);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  const Prefix prefix{7, 24};
  network.router(3).add_rov_invalid(prefix);
  const bgp::StaticConvergeStats stats =
      bgp::static_converge(network, {{4, prefix, 0}});

  // 3 filters the prefix entirely; everyone else converges as before.
  EXPECT_EQ(network.router(3).loc_rib().find(prefix), nullptr);
  EXPECT_EQ(network.router(3).adj_rib_in().route_count(), 0u);
  EXPECT_EQ(full_path(network, 1, prefix), (AsPath{1, 2, 4}));
  EXPECT_EQ(stats.reachable_ases, 3u);
}

TEST(StaticConverge, MultiplePrefixesConvergeIndependently) {
  const AsGraph graph = diamond();
  sim::EventQueue queue;
  stats::Rng rng(1);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  const Prefix pa{7, 24}, pb{8, 24};
  const bgp::StaticConvergeStats stats =
      bgp::static_converge(network, {{4, pa, 0}, {2, pb, 0}});
  EXPECT_EQ(stats.up_visits, 8u);  // 4 ASes x 2 prefixes
  EXPECT_EQ(full_path(network, 1, pa), (AsPath{1, 2, 4}));
  // pb originates at 2: 4 and 3 get it DOWN / via 1.
  EXPECT_EQ(full_path(network, 4, pb), (AsPath{4, 2}));
  EXPECT_EQ(full_path(network, 3, pb), (AsPath{3, 1, 2}));
}

// --------------------------------------------------------------------------
// 2. Properties on randomized topologies.

TEST(StaticConverge, PathsAreLoopFreeAndValleyFreeOnRandomTopologies) {
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    stats::Rng gen_rng(seed);
    const AsGraph graph =
        topology::generate(topology::internet_like(400), gen_rng);
    sim::EventQueue queue;
    stats::Rng rng(seed + 1);
    bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

    // Originate at the first stub.
    AsId origin = 0;
    for (AsId as : graph.as_ids())
      if (graph.tier(as) == Tier::kStub) {
        origin = as;
        break;
      }
    ASSERT_NE(origin, 0u);
    const Prefix prefix{1, 24};
    const bgp::StaticConvergeStats stats =
        bgp::static_converge(network, {{origin, prefix, 0}});

    std::size_t reached = 0;
    for (AsId as : graph.as_ids()) {
      const AsPath path = full_path(network, as, prefix);
      if (path.empty()) continue;
      ++reached;
      EXPECT_FALSE(topology::has_loop(path)) << "seed " << seed;
      EXPECT_TRUE(topology::is_valley_free(graph, path)) << "seed " << seed;
      EXPECT_EQ(path.back(), origin) << "seed " << seed;
    }
    // A customer-originated route is exportable to everyone; the generator
    // connects every AS to the core, so reach is ~total.
    EXPECT_GE(reached, (graph.as_count() * 95) / 100) << "seed " << seed;
    EXPECT_EQ(stats.reachable_ases, reached) << "seed " << seed;
    EXPECT_GT(stats.seeded_routes, reached) << "seed " << seed;
  }
}

// --------------------------------------------------------------------------
// 3. Static vs dynamic Loc-RIB agreement.

TEST(StaticConverge, AgreesWithDynamicConvergenceOnGeneratedGraph) {
  stats::Rng gen_rng(23);
  const AsGraph graph =
      topology::generate(topology::internet_like(300), gen_rng);
  AsId origin = 0;
  for (AsId as : graph.as_ids())
    if (graph.tier(as) == Tier::kStub) {
      origin = as;
      break;
    }
  ASSERT_NE(origin, 0u);
  const Prefix prefix{1, 24};

  sim::EventQueue dyn_queue;
  stats::Rng dyn_rng(5);
  bgp::NetworkConfig ncfg;
  ncfg.mrai_jitter = 0.0;
  bgp::Network dynamic(graph, ncfg, dyn_queue, dyn_rng);
  dynamic.router(origin).originate(prefix, 0);
  dyn_queue.run();

  sim::EventQueue sta_queue;
  stats::Rng sta_rng(5);
  bgp::Network statically(graph, ncfg, sta_queue, sta_rng);
  bgp::static_converge(statically, {{origin, prefix, 0}});

  // Dynamic path hunting can leave ghost Adj-RIB-In entries (loop-dropped
  // announcements do not withdraw their predecessor), so the Loc-RIBs may
  // diverge on a handful of ASes. The fixpoint must still agree nearly
  // everywhere; the bit-exact guarantee lives at the campaign digest level.
  std::size_t agree = 0, total = 0;
  for (AsId as : graph.as_ids()) {
    ++total;
    if (full_path(dynamic, as, prefix) == full_path(statically, as, prefix))
      ++agree;
  }
  EXPECT_GE(agree * 100, total * 99)
      << "only " << agree << "/" << total << " Loc-RIBs agree";
}

// --------------------------------------------------------------------------
// 4. Campaign equivalence: beacon-delta digests are bit-identical.

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Digest of the beacon-delta phase: every record except the warm-start
// baseline prefixes, in store order.
std::pair<std::uint64_t, std::size_t> delta_digest(
    const collector::UpdateStore& store) {
  std::uint64_t hash = 14695981039346656037ULL;
  std::size_t count = 0;
  for (const collector::RecordedUpdate& rec : store.all()) {
    if (rec.update.prefix.id >= experiment::kBaselinePrefixBase) continue;
    ++count;
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, (static_cast<std::uint64_t>(rec.update.prefix.id) << 8) |
                               rec.update.prefix.length);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.beacon_timestamp));
    const auto path = store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return {hash, count};
}

// Equivalence preconditions: dynamic warm-start convergence must consume no
// RNG (jitter off) and no noise/failure draw may race the two modes.
// Background churn stays ON: its prefixes are per-prefix isolated and its
// schedule is drawn before the mode branch, so it must not perturb the delta.
experiment::CampaignConfig equivalence_config(std::uint32_t transit,
                                              std::uint32_t stubs,
                                              std::uint64_t seed) {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.topology.tier1_count = 8;
  config.topology.transit_count = transit;
  config.topology.stub_count = stubs;
  config.pairs = 1;
  config.burst_length = sim::minutes(8);
  config.break_length = sim::minutes(30);
  config.background_prefixes = 2;
  config.session_resets = 0;
  config.missing_aggregator_prob = 0.0;
  config.network.mrai_jitter = 0.0;
  config.warm_start.baseline_prefixes = 4;
  config.seed = seed;
  return config;
}

void expect_warm_start_modes_equivalent(experiment::CampaignConfig base) {
  base.warm_start.mode = experiment::WarmStart::kDynamic;
  const experiment::CampaignResult dynamic = experiment::run_campaign(base);
  base.warm_start.mode = experiment::WarmStart::kStatic;
  const experiment::CampaignResult statically = experiment::run_campaign(base);

  // Same baseline prefixes were drawn (the warm RNG fork is mode-blind).
  ASSERT_EQ(dynamic.baseline.size(), base.warm_start.baseline_prefixes);
  EXPECT_EQ(dynamic.baseline, statically.baseline);
  for (const Prefix& p : dynamic.baseline)
    EXPECT_GE(p.id, experiment::kBaselinePrefixBase);

  // The whole point: static seeding skips the baseline event cascade.
  EXPECT_LT(statically.events_executed, dynamic.events_executed);

  const auto [dyn_hash, dyn_count] = delta_digest(dynamic.store);
  const auto [sta_hash, sta_count] = delta_digest(statically.store);
  ASSERT_GT(dyn_count, 0u);
  EXPECT_EQ(dyn_count, sta_count);
  EXPECT_EQ(dyn_hash, sta_hash);

  // The labeled output — what inference consumes — only covers beacon
  // prefixes, so it must agree too.
  ASSERT_EQ(dynamic.labeled.size(), statically.labeled.size());
  ASSERT_EQ(dynamic.observed.size(), statically.observed.size());
}

TEST(WarmStartEquivalence, StaticMatchesDynamicAtOneThousandAses) {
  expect_warm_start_modes_equivalent(equivalence_config(120, 880, 5));
}

TEST(WarmStartEquivalence, StaticMatchesDynamicAcrossSeeds) {
  expect_warm_start_modes_equivalent(equivalence_config(80, 420, 29));
}

TEST(WarmStartEquivalence, NoWarmStartStillRuns) {
  // kNone must keep working untouched (the golden-trace test pins its exact
  // digest; here we pin the structural invariants of the default path).
  experiment::CampaignConfig config = equivalence_config(40, 160, 11);
  config.warm_start.mode = experiment::WarmStart::kNone;
  const experiment::CampaignResult result = experiment::run_campaign(config);
  EXPECT_TRUE(result.baseline.empty());
  EXPECT_GT(result.store.size(), 0u);
  const auto [hash, count] = delta_digest(result.store);
  EXPECT_EQ(count, result.store.size());  // no baseline records to exclude
  (void)hash;
}

// --------------------------------------------------------------------------
// Leyba-style structure check: per-VP visibility of the routed tree.

TEST(StaticConverge, PerVpLinkVisibilityIsPartialAndGrows) {
  stats::Rng gen_rng(41);
  const AsGraph graph =
      topology::generate(topology::internet_like(600), gen_rng);
  sim::EventQueue queue;
  stats::Rng rng(2);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  AsId origin = 0;
  for (AsId as : graph.as_ids())
    if (graph.tier(as) == Tier::kStub) {
      origin = as;
      break;
    }
  ASSERT_NE(origin, 0u);
  const Prefix prefix{1, 24};
  bgp::static_converge(network, {{origin, prefix, 0}});

  // VPs = stub ASes with a converged route (like real route collectors
  // peering at the edge), in id order for determinism.
  std::vector<AsId> vps;
  for (AsId as : graph.as_ids())
    if (graph.tier(as) == Tier::kStub && as != origin &&
        network.router(as).loc_rib().find(prefix) != nullptr)
      vps.push_back(as);
  ASSERT_GE(vps.size(), 25u);

  std::set<std::pair<AsId, AsId>> seen_few, seen_many;
  for (std::size_t i = 0; i < 25 && i < vps.size(); ++i) {
    const AsPath path = full_path(network, vps[i], prefix);
    for (const auto& link : topology::links_on_path(path)) {
      if (i < 5) seen_few.insert(link);
      seen_many.insert(link);
    }
  }
  // Each VP sees one branch of the routed tree: more VPs expose strictly
  // more links, and even 25 VPs see only a sliver of the whole topology —
  // the partial-visibility regime the paper's tomography works in.
  EXPECT_GT(seen_many.size(), seen_few.size());
  EXPECT_LT(seen_many.size(), graph.link_count() / 2);
  EXPECT_GT(seen_many.size(), 0u);
}

}  // namespace
}  // namespace because
