#include <gtest/gtest.h>

#include "core/summary.hpp"

namespace because::core {
namespace {

labeling::PathDataset one_as_dataset() {
  labeling::PathDataset d;
  d.add_path({10}, true);
  return d;
}

TEST(Summary, MeanAndHdpiFromChain) {
  const auto data = one_as_dataset();
  Chain chain(1);
  for (int i = 0; i < 100; ++i)
    chain.push(std::vector<double>{0.8 + 0.001 * (i % 10)});
  const auto summaries = summarize(chain, data);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].as, 10u);
  EXPECT_NEAR(summaries[0].mean, 0.8045, 1e-9);
  EXPECT_GE(summaries[0].hdpi.lo, 0.8);
  EXPECT_LE(summaries[0].hdpi.hi, 0.81);
  EXPECT_GT(summaries[0].certainty(), 0.98);
}

TEST(Summary, CertaintyIsOneMinusWidth) {
  MarginalSummary s;
  s.hdpi = stats::Interval{0.2, 0.5};
  EXPECT_NEAR(s.certainty(), 0.7, 1e-12);
}

TEST(Summary, MultiCoordinate) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  Chain chain(2);
  chain.push(std::vector<double>{0.9, 0.1});
  chain.push(std::vector<double>{0.8, 0.2});
  const auto summaries = summarize(chain, d);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_NEAR(summaries[0].mean, 0.85, 1e-12);
  EXPECT_NEAR(summaries[1].mean, 0.15, 1e-12);
  EXPECT_EQ(summaries[0].node, 0u);
  EXPECT_EQ(summaries[1].node, 1u);
}

TEST(Summary, DimensionMismatchThrows) {
  const auto data = one_as_dataset();
  Chain chain(2);
  chain.push(std::vector<double>{0.5, 0.5});
  EXPECT_THROW(summarize(chain, data), std::invalid_argument);
}

TEST(Summary, EmptyChainThrows) {
  const auto data = one_as_dataset();
  Chain chain(1);
  EXPECT_THROW(summarize(chain, data), std::invalid_argument);
}

}  // namespace
}  // namespace because::core
