// Negative-compile fixture: calling a BECAUSE_EXCLUDES(mu_) function while
// holding mu_ must fail under -Werror=thread-safety. This is the
// self-deadlock shape the dataset caches guard against — every public
// accessor is EXCLUDES(mutex_) and takes the lock itself, so re-entering one
// from a locked scope would deadlock on the non-recursive mutex.
//
// tsa-expect: cannot call function 'rebuild' while mutex 'mu_' is held
#include "util/annotations.hpp"

namespace {

class Cache {
 public:
  void rebuild() BECAUSE_EXCLUDES(mu_) {
    because::util::MutexLock lock(mu_);
    ++generation_;
  }

  // BUG under analysis: re-enters a self-locking function while holding the
  // (non-recursive) mutex — a guaranteed deadlock at runtime.
  void refresh() {
    because::util::MutexLock lock(mu_);
    rebuild();
  }

 private:
  because::util::Mutex mu_;
  int generation_ BECAUSE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int tsa_fixture_excludes_held() {
  Cache c;
  c.refresh();
  return 0;
}
