// Negative-compile fixture: reading a BECAUSE_GUARDED_BY member without
// holding its mutex must fail under -Werror=thread-safety. This is the core
// guarantee the annotation layer buys — a forgotten MutexLock on a cold-path
// cache is a compile error, not a data race found in TSan (or production).
//
// tsa-expect: requires holding mutex 'mu_'
#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void bump_locked() {
    because::util::MutexLock lock(mu_);
    ++value_;
  }

  // BUG under analysis: guarded read with no lock held.
  int read_unlocked() const { return value_; }

 private:
  mutable because::util::Mutex mu_;
  int value_ BECAUSE_GUARDED_BY(mu_) = 0;
};

}  // namespace

// Keep the class odr-used so no toolchain elides the definitions.
int tsa_fixture_guarded_without_lock() {
  Counter c;
  c.bump_locked();
  return c.read_unlocked();
}
