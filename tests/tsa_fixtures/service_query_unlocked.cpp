// Negative-compile fixture for the becaused query/ingest lock contract: the
// daemon publishes query results and bumps its counters under one annotated
// mutex, and a fast-path "just read the stats, they're only counters" shortcut
// must fail the analysis. (The entry lease flag itself lives in a nested
// struct the analysis cannot annotate against the outer mutex — this fixture
// pins the guarantee for everything that CAN be annotated, which is every
// other daemon member.)
//
// tsa-expect: requires holding mutex 'mutex_'
#include <cstdint>

#include "util/annotations.hpp"

namespace {

struct Stats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
};

class MiniDaemon {
 public:
  void record_query_locked(bool hit) {
    because::util::MutexLock lock(mutex_);
    ++stats_.queries;
    if (hit) ++stats_.cache_hits;
  }

  // BUG under analysis: the daemon's stats are guarded like every other
  // member; reading them without the lock races the query path.
  std::uint64_t queries_unlocked() const { return stats_.queries; }

 private:
  mutable because::util::Mutex mutex_;
  Stats stats_ BECAUSE_GUARDED_BY(mutex_);
};

}  // namespace

// Keep the class odr-used so no toolchain elides the definitions.
std::uint64_t tsa_fixture_service_query_unlocked() {
  MiniDaemon d;
  d.record_query_locked(true);
  return d.queries_unlocked();
}
