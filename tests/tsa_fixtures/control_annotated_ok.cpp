// Positive control: idiomatic use of the annotated primitives must compile
// with ZERO thread-safety diagnostics. If this fixture ever starts warning,
// the annotation layer itself regressed (over-strict attributes would force
// allow-listing real code), independent of whether the negative fixtures
// still fail. Exercises every shape the migrated modules use: MutexLock
// scopes, a REQUIRES callee invoked under the lock, an EXCLUDES entry point,
// bare lock()/unlock() pairing, and the CondVar manual wait loop.
#include "util/annotations.hpp"

#include <deque>

namespace {

class Channel {
 public:
  void push(int v) BECAUSE_EXCLUDES(mu_) {
    {
      because::util::MutexLock lock(mu_);
      queue_.push_back(v);
      bump_locked();
    }
    cv_.notify_one();
  }

  int pop() BECAUSE_EXCLUDES(mu_) {
    because::util::MutexLock lock(mu_);
    // Manual wait loop: guarded reads stay in this (locked) scope, exactly
    // like ThreadPool::worker_loop.
    while (queue_.empty() && !closed_) cv_.wait(mu_);
    if (queue_.empty()) return -1;
    int v = queue_.front();
    queue_.pop_front();
    return v;
  }

  void close() BECAUSE_EXCLUDES(mu_) {
    mu_.lock();
    closed_ = true;
    mu_.unlock();
    cv_.notify_all();
  }

 private:
  void bump_locked() BECAUSE_REQUIRES(mu_) { ++pushes_; }

  because::util::Mutex mu_;
  because::util::CondVar cv_;
  std::deque<int> queue_ BECAUSE_GUARDED_BY(mu_);
  bool closed_ BECAUSE_GUARDED_BY(mu_) = false;
  long pushes_ BECAUSE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int tsa_control_annotated_ok() {
  Channel ch;
  ch.push(1);
  ch.close();
  return ch.pop();
}
