// Negative-compile fixture: calling a BECAUSE_REQUIRES(mu_) function without
// holding mu_ must fail under -Werror=thread-safety. This is the contract
// the registry's register_locked() helper relies on — callees annotated
// REQUIRES never lock, so an unlocked caller is a straight data race.
//
// tsa-expect: calling function 'touch' requires holding mutex 'mu_'
#include "util/annotations.hpp"

namespace {

class Table {
 public:
  void touch() BECAUSE_REQUIRES(mu_) { ++value_; }

  // BUG under analysis: REQUIRES callee invoked with no lock held.
  void call_without_lock() { touch(); }

 private:
  because::util::Mutex mu_;
  int value_ BECAUSE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int tsa_fixture_requires_unheld() {
  Table t;
  t.call_without_lock();
  return 0;
}
