// Negative-compile fixture: the cross-shard channel lock contract. Captured
// events crossing a shard boundary are handed over under the channel mutex —
// push() models the worker-side enqueue at a round boundary, drain() the
// coordinator-side merge. Draining without the lock (the bug below) would
// let the coordinator race a late worker's enqueue and corrupt the stable
// merge order the bit-identity contract rests on, so it must be a compile
// error under -Werror=thread-safety, not a rare TSan report.
//
// tsa-expect: requires holding mutex 'mu_'
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace {

class CrossShardChannel {
 public:
  void push(std::uint64_t capture) {
    because::util::MutexLock lock(mu_);
    pending_.push_back(capture);
  }

  // BUG under analysis: coordinator-side drain with no channel lock held.
  std::size_t drain_unlocked(std::vector<std::uint64_t>& out) {
    out.swap(pending_);  // guarded access, no lock
    return out.size();
  }

 private:
  because::util::Mutex mu_;
  std::vector<std::uint64_t> pending_ BECAUSE_GUARDED_BY(mu_);
};

}  // namespace

// Keep the class odr-used so no toolchain elides the definitions.
std::size_t tsa_fixture_cross_shard_channel_unlocked() {
  CrossShardChannel channel;
  channel.push(1);
  std::vector<std::uint64_t> out;
  return channel.drain_unlocked(out);
}
