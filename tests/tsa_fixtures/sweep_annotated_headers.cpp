// Sweep TU for header-only annotated code. The check-tsa gate analyzes the
// annotated .cpp modules (obs/metrics, obs/trace, labeling/dataset,
// core/kernels/dispatch) directly; ThreadPool lives entirely in a header and
// its submit() is a template, which clang only analyzes on instantiation —
// so this TU includes the header and forces an instantiation to pull the
// whole pool (ctor, dtor, submit, worker_loop) through -Werror=thread-safety.
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

int tsa_sweep_thread_pool() {
  because::util::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41; });
  return fut.get() + static_cast<int>(pool.size());
}
