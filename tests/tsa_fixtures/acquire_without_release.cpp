// Negative-compile fixture: a path that acquires the mutex and returns
// without releasing it must fail under -Werror=thread-safety. Catches the
// manual lock()/unlock() pairing mistakes that MutexLock exists to prevent.
//
// tsa-expect: mutex 'mu_' is still held at the end of function
#include "util/annotations.hpp"

namespace {

class Leaky {
 public:
  // BUG under analysis: bare lock() with no unlock() on the return path.
  void leak_lock() {
    mu_.lock();
    ++value_;
  }

 private:
  because::util::Mutex mu_;
  int value_ BECAUSE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int tsa_fixture_acquire_without_release() {
  Leaky l;
  l.leak_lock();
  return 0;
}
