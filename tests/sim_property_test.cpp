// Property-based ordering tests for the event engine.
//
// A reference model — a plain vector popped by linear min-scan on the
// (time, seq) pair, with the same past-clamping rule — defines the engine
// contract. Random workloads (dense ties, sparse far-apart times, events
// that schedule more events from inside their own execution, run_until
// splits) are executed against the reference model and against both real
// backends; the full execution traces must agree element-by-element. Child
// events are derived deterministically from the parent's id (never from
// shared RNG state), so a trace divergence always means an ordering bug and
// not test-harness noise.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/time.hpp"

namespace because::sim {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Deterministic spawn rule applied by every executed event, in both the
/// model and the real queues. Returns the children as (absolute?, value, id).
struct Spawn {
  bool absolute;
  Time when_or_delay;
  std::uint64_t id;
};

std::vector<Spawn> children_of(std::uint64_t id, Time now, int depth) {
  std::vector<Spawn> out;
  if (depth >= 3) return out;
  const std::uint64_t h = mix(id);
  if (h % 4 == 0) {
    // Relative child, often delay 0 (same-time FIFO tie with siblings).
    out.push_back({false, static_cast<Time>((h >> 8) % 50), id * 2 + 1});
  }
  if (h % 7 == 0) {
    // Absolute child in the past: must clamp to `now`, not throw or rewind.
    out.push_back({true, now - static_cast<Time>((h >> 16) % 100) - 1,
                   id * 2 + 2});
  }
  if (h % 9 == 0) {
    // Far-future child: forces calendar cycling / resize.
    out.push_back({true, now + hours(1) + static_cast<Time>((h >> 24) % hours(48)),
                   id * 3 + 1});
  }
  return out;
}

using Trace = std::vector<std::pair<Time, std::uint64_t>>;

/// The specification: an unordered vector popped by linear (when, seq) min
/// scan. Intentionally naive — O(n) per pop — so it is obviously correct.
class ReferenceModel {
 public:
  void schedule(Time when, std::uint64_t id, int depth) {
    if (when < now_) when = now_;
    pending_.push_back({when, next_seq_++, id, depth});
  }

  Trace run_until(Time deadline, bool bounded) {
    Trace trace;
    for (;;) {
      std::size_t best = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (best == pending_.size() || pending_[i].when < pending_[best].when ||
            (pending_[i].when == pending_[best].when &&
             pending_[i].seq < pending_[best].seq))
          best = i;
      }
      if (best == pending_.size()) break;
      if (bounded && pending_[best].when > deadline) break;
      const Entry entry = pending_[best];
      pending_.erase(pending_.begin() + best);
      now_ = entry.when;
      trace.emplace_back(now_, entry.id);
      for (const Spawn& child : children_of(entry.id, now_, entry.depth)) {
        schedule(child.absolute ? child.when_or_delay : now_ + child.when_or_delay,
                 child.id, entry.depth + 1);
      }
    }
    if (bounded && now_ < deadline) now_ = deadline;
    return trace;
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint64_t id;
    int depth;
  };
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> pending_;
};

/// Drives a real EventQueue with the same workload, recording the trace.
class QueueHarness {
 public:
  explicit QueueHarness(EngineBackend backend) : queue_(backend) {}

  void schedule(Time when, std::uint64_t id, int depth) {
    queue_.schedule_at(when, [this, id, depth] { execute(id, depth); });
  }

  Trace run_until(Time deadline, bool bounded) {
    trace_.clear();
    if (bounded) queue_.run_until(deadline);
    else queue_.run();
    return std::move(trace_);
  }

  const EventQueue& queue() const { return queue_; }

 private:
  void execute(std::uint64_t id, int depth) {
    trace_.emplace_back(queue_.now(), id);
    for (const Spawn& child : children_of(id, queue_.now(), depth)) {
      const std::uint64_t cid = child.id;
      const int cdepth = depth + 1;
      if (child.absolute) {
        queue_.schedule_at(child.when_or_delay,
                           [this, cid, cdepth] { execute(cid, cdepth); });
      } else {
        queue_.schedule_in(child.when_or_delay,
                           [this, cid, cdepth] { execute(cid, cdepth); });
      }
    }
  }

  EventQueue queue_;
  Trace trace_;
};

/// One random workload: `count` root events over a time range chosen to be
/// either tie-dense or sparse, optionally split by a run_until barrier.
void check_workload(std::uint64_t seed, std::size_t count, Time range,
                    bool with_deadline) {
  std::mt19937_64 rng(seed);
  std::vector<std::pair<Time, std::uint64_t>> roots;
  roots.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    roots.emplace_back(static_cast<Time>(rng() % static_cast<std::uint64_t>(range)),
                       1000000 + i);
  }

  ReferenceModel model;
  QueueHarness calendar(EngineBackend::kCalendar);
  QueueHarness heap(EngineBackend::kFunctionHeap);
  for (const auto& [when, id] : roots) {
    model.schedule(when, id, 0);
    calendar.schedule(when, id, 0);
    heap.schedule(when, id, 0);
  }

  if (with_deadline) {
    const Time deadline = range / 2;
    const Trace expected = model.run_until(deadline, true);
    EXPECT_EQ(calendar.run_until(deadline, true), expected)
        << "calendar diverged before deadline, seed " << seed;
    EXPECT_EQ(heap.run_until(deadline, true), expected)
        << "heap diverged before deadline, seed " << seed;
    // Schedule fresh roots *between* the bounded and unbounded runs, earlier
    // than any event the bounded run deferred (times < deadline clamp to
    // now == deadline under the shared rule). Regression coverage for the
    // calendar cursor rewind after run_until pops past its deadline.
    for (std::size_t i = 0; i < count / 4; ++i) {
      const Time when =
          static_cast<Time>(rng() % static_cast<std::uint64_t>(range));
      const std::uint64_t id = 2000000 + i;
      model.schedule(when, id, 0);
      calendar.schedule(when, id, 0);
      heap.schedule(when, id, 0);
    }
  }

  const Trace expected = model.run_until(0, false);
  EXPECT_EQ(calendar.run_until(0, false), expected)
      << "calendar diverged, seed " << seed;
  EXPECT_EQ(heap.run_until(0, false), expected)
      << "heap diverged, seed " << seed;
  EXPECT_EQ(calendar.queue().executed(), heap.queue().executed());
  EXPECT_EQ(calendar.queue().past_clamped(), heap.queue().past_clamped());
}

TEST(SimProperty, DenseTiesMatchReferenceModel) {
  // Tiny time range: most events collide on the same timestamps, so the
  // trace is dominated by FIFO tie-breaking.
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    check_workload(seed, 300, 20, false);
}

TEST(SimProperty, MixedDensityMatchesReferenceModel) {
  for (std::uint64_t seed = 100; seed < 112; ++seed)
    check_workload(seed, 250, minutes(10), false);
}

TEST(SimProperty, SparseWorkloadsForceCalendarCyclingAndResizing) {
  // Huge range relative to the event count: the calendar's cursor must cycle
  // through empty buckets and fall back to direct min-search.
  for (std::uint64_t seed = 200; seed < 208; ++seed)
    check_workload(seed, 60, hours(24 * 30), false);
}

TEST(SimProperty, RunUntilSplitPreservesTrace) {
  for (std::uint64_t seed = 300; seed < 310; ++seed)
    check_workload(seed, 200, minutes(30), true);
}

// ---------------------------------------------------------------------------
// Sharded-engine property: a random message-passing workload over N nodes,
// partitioned round-robin across K shard queues, must execute exactly the
// per-node event streams of the serial (K=1) run. Cross-node sends pay at
// least the cut-delay floor (the partition contract bgp::Network guarantees
// via link delays); local follow-ups may land arbitrarily close, including
// same-time ties. Children derive only from (node, msg), so any trace
// divergence is an ordering bug in the round capture/merge protocol.

constexpr Time kShardCutDelay = seconds(2);
constexpr std::uint64_t kShardDepthStep = std::uint64_t{1} << 56;
constexpr int kShardMaxDepth = 4;

class ShardedMessageHarness {
 public:
  ShardedMessageHarness(std::uint32_t shards, std::uint64_t nodes)
      : shards_(shards), nodes_(nodes), traces_(shards) {
    for (std::uint32_t s = 0; s < shards; ++s)
      queues_.push_back(std::make_unique<EventQueue>(EngineBackend::kCalendar));
    for (auto& queue : queues_) queue->bind_seq_counter(&seq_);
  }

  std::uint32_t shard_of(std::uint64_t node) const {
    return static_cast<std::uint32_t>(node % shards_);
  }

  void schedule_root(Time when, std::uint64_t node, std::uint64_t msg) {
    // Out-of-round setup goes straight onto the owner's queue, the same way
    // campaign setup targets queue_for(as).
    queues_[shard_of(node)]->schedule_event_at(when, EventKind::kClosure,
                                               &ShardedMessageHarness::event,
                                               this, node, msg);
  }

  std::uint64_t run() {
    std::vector<EventQueue*> raw;
    raw.reserve(queues_.size());
    for (auto& queue : queues_) raw.push_back(queue.get());
    ShardedEngine::Config config;
    config.lookahead = kShardCutDelay;
    ShardedEngine engine(raw, config,
                         [this](std::uint32_t, EventQueue::CapturedEvent& cap) {
                           return shard_of(cap.a);
                         });
    return engine.run();
  }

  /// (when, msg) stream of one node, in execution order.
  std::vector<std::pair<Time, std::uint64_t>> node_trace(
      std::uint64_t node) const {
    std::vector<std::pair<Time, std::uint64_t>> out;
    for (const Entry& entry : traces_[shard_of(node)])
      if (entry.node == node) out.emplace_back(entry.when, entry.msg);
    return out;
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t node;
    std::uint64_t msg;
  };

  static void event(EventQueue& queue, void* ctx, std::uint64_t node,
                    std::uint64_t msg) {
    static_cast<ShardedMessageHarness*>(ctx)->execute(queue, node, msg);
  }

  void execute(EventQueue& queue, std::uint64_t node, std::uint64_t msg) {
    // A node's events always run on its own shard, so each worker only
    // appends to its own trace vector.
    traces_[shard_of(node)].push_back({queue.now(), node, msg});
    const int depth = static_cast<int>(msg >> 56);
    if (depth >= kShardMaxDepth) return;
    const std::uint64_t next = (msg + kShardDepthStep) & ~std::uint64_t{0xff};
    const std::uint64_t h = mix(node * 0x9e37 + (msg & (kShardDepthStep - 1)));
    if (h % 3 == 0) {
      // Local follow-up: same node, tiny delay (ties with siblings allowed —
      // these take the provisional-seq path inside a round).
      queue.schedule_event_in(static_cast<Duration>(h % 100),
                              EventKind::kClosure,
                              &ShardedMessageHarness::event, this, node,
                              next | 1);
    }
    if (h % 2 == 0) {
      // Cross-node message: any node, delayed by at least the cut floor.
      // Scheduled on the *sender's* queue, exactly like Network::deliver_in
      // in-round; the dispatcher routes the capture to the owner's shard.
      const std::uint64_t to = (h >> 16) % nodes_;
      const Duration delay =
          kShardCutDelay + static_cast<Duration>((h >> 32) % seconds(5));
      queue.schedule_event_in(delay, EventKind::kClosure,
                              &ShardedMessageHarness::event, this, to,
                              next | 2);
    }
    if (h % 11 == 0) {
      // Same-time fan-out: both messages land at the same instant on
      // (usually) different shards — the merge-order tie-break case.
      for (std::uint64_t k = 1; k <= 2; ++k) {
        queue.schedule_event_in(kShardCutDelay, EventKind::kClosure,
                                &ShardedMessageHarness::event, this,
                                (node + k) % nodes_, next | (2 + k));
      }
    }
  }

  std::uint32_t shards_;
  std::uint64_t nodes_;
  std::uint64_t seq_ = 0;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<std::vector<Entry>> traces_;
};

TEST(SimProperty, ShardedEngineMatchesSerialPerNodeStreams) {
  for (std::uint64_t seed = 500; seed < 506; ++seed) {
    std::mt19937_64 rng(seed);
    constexpr std::uint64_t kNodes = 24;
    std::vector<std::tuple<Time, std::uint64_t, std::uint64_t>> roots;
    for (std::uint64_t i = 0; i < 120; ++i) {
      roots.emplace_back(static_cast<Time>(rng() % minutes(2)), rng() % kNodes,
                         i << 8);
    }

    ShardedMessageHarness serial(1, kNodes);
    for (const auto& [when, node, msg] : roots)
      serial.schedule_root(when, node, msg);
    const std::uint64_t serial_executed = serial.run();
    ASSERT_GT(serial_executed, roots.size());  // the workload actually fans out

    for (std::uint32_t shards : {2u, 3u, 5u}) {
      ShardedMessageHarness sharded(shards, kNodes);
      for (const auto& [when, node, msg] : roots)
        sharded.schedule_root(when, node, msg);
      EXPECT_EQ(sharded.run(), serial_executed)
          << shards << " shards, seed " << seed;
      for (std::uint64_t node = 0; node < kNodes; ++node) {
        EXPECT_EQ(sharded.node_trace(node), serial.node_trace(node))
            << "node " << node << ", " << shards << " shards, seed " << seed;
      }
    }
  }
}

TEST(SimProperty, PastClampCountsAgreeWithModelSemantics) {
  // A workload guaranteed to hit the clamp rule (children with h % 7 == 0).
  ReferenceModel model;
  QueueHarness calendar(EngineBackend::kCalendar);
  for (std::uint64_t id = 0; id < 400; ++id) {
    const Time when = static_cast<Time>(mix(id ^ 0xbeef) % minutes(5));
    model.schedule(when, id, 0);
    calendar.schedule(when, id, 0);
  }
  EXPECT_EQ(calendar.run_until(0, false), model.run_until(0, false));
  EXPECT_GT(calendar.queue().past_clamped(), 0u);
}

}  // namespace
}  // namespace because::sim
