#include <gtest/gtest.h>

#include <vector>

#include "core/chain.hpp"
#include "core/hmc.hpp"
#include "core/likelihood.hpp"
#include "core/metropolis.hpp"
#include "core/prior.hpp"
#include "stats/ess.hpp"
#include "stats/rng.hpp"

namespace because::core {
namespace {

/// Planted scenario: AS 10 damps everything, ASs 20/30/40 never damp.
/// Paths through 10 show the property; others do not.
labeling::PathDataset planted_dataset(int copies) {
  labeling::PathDataset d;
  for (int i = 0; i < copies; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({10, 30}, true);
    d.add_path({10, 20, 30}, true);
    d.add_path({20, 30}, false);
    d.add_path({30, 40}, false);
    d.add_path({20, 40}, false);
  }
  return d;
}

// ---------------------------------------------------------------- chain

TEST(Chain, PushAndAccess) {
  Chain c(2);
  c.push(std::vector<double>{0.1, 0.9});
  c.push(std::vector<double>{0.3, 0.7});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.dim(), 2u);
  EXPECT_DOUBLE_EQ(c.sample(1)[0], 0.3);
  EXPECT_DOUBLE_EQ(c.mean(0), 0.2);
  EXPECT_EQ(c.marginal(1), (std::vector<double>{0.9, 0.7}));
}

TEST(Chain, Validation) {
  EXPECT_THROW(Chain(0), std::invalid_argument);
  Chain c(2);
  EXPECT_THROW(c.push(std::vector<double>{0.1}), std::invalid_argument);
  EXPECT_THROW(c.sample(0), std::out_of_range);
  EXPECT_THROW(c.marginal(5), std::out_of_range);
  EXPECT_THROW(c.mean(0), std::logic_error);
}

// ---------------------------------------------------------------- MH

TEST(Metropolis, RecoversPlantedDamper) {
  const auto data = planted_dataset(10);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 1500;
  config.burn_in = 500;
  config.seed = 1;
  const Chain chain = run_metropolis(lik, Prior::uniform(), config);

  const auto i10 = *data.index_of(10);
  const auto i20 = *data.index_of(20);
  const auto i30 = *data.index_of(30);
  EXPECT_GT(chain.mean(i10), 0.8);
  EXPECT_LT(chain.mean(i20), 0.2);
  EXPECT_LT(chain.mean(i30), 0.2);
}

TEST(Metropolis, NoDataRecoversPrior) {
  // AS 40 appears only on one clean path with 20/30 - plenty of data. Use a
  // dedicated "hidden" AS: present only on property paths that another AS
  // already explains poorly... simplest true no-data check: an AS only on
  // paths together with a strong damper.
  labeling::PathDataset d;
  for (int i = 0; i < 20; ++i) {
    d.add_path({10, 99}, true);  // 99 always hides behind damper 10
    d.add_path({10, 20}, true);
    d.add_path({20}, false);
  }
  const Likelihood lik(d);
  MetropolisConfig config;
  config.samples = 1500;
  config.burn_in = 500;
  config.seed = 2;
  const Prior prior = Prior::beta(2.0, 2.0);
  const Chain chain = run_metropolis(lik, prior, config);

  // 99's marginal should stay near the prior mean 0.5 with wide spread
  // (slightly above, because p99 high is also consistent with the data).
  const auto i99 = *d.index_of(99);
  EXPECT_GT(chain.mean(i99), 0.35);
  const auto marg = chain.marginal(i99);
  double lo = 1.0, hi = 0.0;
  for (double x : marg) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_GT(hi - lo, 0.5);  // wide: no information
}

TEST(Metropolis, DeterministicForSeed) {
  const auto data = planted_dataset(3);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 100;
  config.burn_in = 50;
  config.seed = 7;
  const Chain a = run_metropolis(lik, Prior::uniform(), config);
  const Chain b = run_metropolis(lik, Prior::uniform(), config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); t += 10)
    for (std::size_t i = 0; i < a.dim(); ++i)
      EXPECT_DOUBLE_EQ(a.sample(t)[i], b.sample(t)[i]);
}

TEST(Metropolis, AcceptanceRateReasonable) {
  const auto data = planted_dataset(5);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 500;
  config.burn_in = 200;
  config.seed = 3;
  const Chain chain = run_metropolis(lik, Prior::uniform(), config);
  EXPECT_GT(chain.acceptance_rate, 0.1);
  EXPECT_LT(chain.acceptance_rate, 0.99);
}

TEST(Metropolis, SamplesStayInUnitInterval) {
  const auto data = planted_dataset(2);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 300;
  config.burn_in = 100;
  config.seed = 4;
  const Chain chain = run_metropolis(lik, Prior::uniform(), config);
  for (std::size_t t = 0; t < chain.size(); ++t)
    for (double x : chain.sample(t)) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
}

TEST(Metropolis, ConfigValidation) {
  const auto data = planted_dataset(1);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 0;
  EXPECT_THROW(run_metropolis(lik, Prior::uniform(), config),
               std::invalid_argument);
  config = MetropolisConfig{};
  config.proposal_sigma = 0.0;
  EXPECT_THROW(run_metropolis(lik, Prior::uniform(), config),
               std::invalid_argument);
  config = MetropolisConfig{};
  config.thin = 0;
  EXPECT_THROW(run_metropolis(lik, Prior::uniform(), config),
               std::invalid_argument);
}

// ---------------------------------------------------------------- HMC

TEST(Hmc, RecoversPlantedDamper) {
  const auto data = planted_dataset(10);
  const Likelihood lik(data);
  HmcConfig config;
  config.samples = 600;
  config.burn_in = 200;
  config.seed = 5;
  const Chain chain = run_hmc(lik, Prior::uniform(), config);

  EXPECT_GT(chain.mean(*data.index_of(10)), 0.8);
  EXPECT_LT(chain.mean(*data.index_of(20)), 0.25);
  EXPECT_LT(chain.mean(*data.index_of(30)), 0.25);
}

TEST(Hmc, AcceptanceRateHealthy) {
  const auto data = planted_dataset(5);
  const Likelihood lik(data);
  HmcConfig config;
  config.samples = 300;
  config.burn_in = 100;
  config.seed = 6;
  const Chain chain = run_hmc(lik, Prior::uniform(), config);
  EXPECT_GT(chain.acceptance_rate, 0.5);  // leapfrog should be accurate
}

TEST(Hmc, DeterministicForSeed) {
  const auto data = planted_dataset(2);
  const Likelihood lik(data);
  HmcConfig config;
  config.samples = 50;
  config.burn_in = 20;
  config.seed = 9;
  const Chain a = run_hmc(lik, Prior::uniform(), config);
  const Chain b = run_hmc(lik, Prior::uniform(), config);
  for (std::size_t t = 0; t < a.size(); t += 5)
    for (std::size_t i = 0; i < a.dim(); ++i)
      EXPECT_DOUBLE_EQ(a.sample(t)[i], b.sample(t)[i]);
}

TEST(Hmc, SamplesStayInUnitInterval) {
  const auto data = planted_dataset(2);
  const Likelihood lik(data);
  HmcConfig config;
  config.samples = 200;
  config.burn_in = 50;
  config.seed = 10;
  const Chain chain = run_hmc(lik, Prior::uniform(), config);
  for (std::size_t t = 0; t < chain.size(); ++t)
    for (double x : chain.sample(t)) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
}

TEST(Hmc, ConfigValidation) {
  const auto data = planted_dataset(1);
  const Likelihood lik(data);
  HmcConfig config;
  config.step_size = 0.0;
  EXPECT_THROW(run_hmc(lik, Prior::uniform(), config), std::invalid_argument);
  config = HmcConfig{};
  config.leapfrog_steps = 0;
  EXPECT_THROW(run_hmc(lik, Prior::uniform(), config), std::invalid_argument);
  config = HmcConfig{};
  config.samples = 0;
  EXPECT_THROW(run_hmc(lik, Prior::uniform(), config), std::invalid_argument);
}

TEST(Hmc, AgreesWithMetropolisOnMarginalMeans) {
  const auto data = planted_dataset(8);
  const Likelihood lik(data);

  MetropolisConfig mh;
  mh.samples = 1500;
  mh.burn_in = 500;
  mh.seed = 11;
  const Chain chain_mh = run_metropolis(lik, Prior::uniform(), mh);

  HmcConfig hmc;
  hmc.samples = 600;
  hmc.burn_in = 200;
  hmc.seed = 12;
  const Chain chain_hmc = run_hmc(lik, Prior::uniform(), hmc);

  for (std::size_t i = 0; i < data.as_count(); ++i)
    EXPECT_NEAR(chain_mh.mean(i), chain_hmc.mean(i), 0.12)
        << "AS " << data.as_at(i);
}

TEST(Hmc, MixesOnMultiDamperPosterior) {
  // Two dampers on disjoint path sets: both must be identified.
  labeling::PathDataset d;
  for (int i = 0; i < 10; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({20}, false);
    d.add_path({11, 21}, true);
    d.add_path({21}, false);
  }
  const Likelihood lik(d);
  HmcConfig config;
  config.samples = 500;
  config.burn_in = 150;
  config.seed = 13;
  const Chain chain = run_hmc(lik, Prior::uniform(), config);
  EXPECT_GT(chain.mean(*d.index_of(10)), 0.7);
  EXPECT_GT(chain.mean(*d.index_of(11)), 0.7);
  EXPECT_LT(chain.mean(*d.index_of(20)), 0.3);
  EXPECT_LT(chain.mean(*d.index_of(21)), 0.3);
}

TEST(Metropolis, NoiseModelAbsorbsContradictoryLabel) {
  // One AS with overwhelmingly clean evidence plus a single "shows" label:
  // without the error model the posterior is pulled up noticeably more
  // than with it.
  labeling::PathDataset d;
  for (int i = 0; i < 30; ++i) d.add_path({10}, false);
  d.add_path({10}, true);

  MetropolisConfig config;
  config.samples = 1500;
  config.burn_in = 500;
  config.seed = 21;

  const Likelihood plain(d);
  const Chain plain_chain = run_metropolis(plain, Prior::uniform(), config);

  NoiseModel noise;
  noise.false_signature = 0.05;
  noise.missed_signature = 0.05;
  const Likelihood noisy(d, noise);
  const Chain noisy_chain = run_metropolis(noisy, Prior::uniform(), config);

  EXPECT_LT(noisy_chain.mean(0), plain_chain.mean(0));
  EXPECT_LT(noisy_chain.mean(0), 0.1);
}

TEST(Hmc, WorksWithNoiseModel) {
  labeling::PathDataset d;
  for (int i = 0; i < 10; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({20}, false);
  }
  NoiseModel noise;
  noise.false_signature = 0.05;
  noise.missed_signature = 0.05;
  const Likelihood lik(d, noise);
  HmcConfig config;
  config.samples = 300;
  config.burn_in = 100;
  config.seed = 22;
  const Chain chain = run_hmc(lik, Prior::uniform(), config);
  EXPECT_GT(chain.acceptance_rate, 0.5);
  EXPECT_GT(chain.mean(*d.index_of(10)), 0.7);
  EXPECT_LT(chain.mean(*d.index_of(20)), 0.3);
}

TEST(Metropolis, EffectiveSampleSizeNontrivial) {
  const auto data = planted_dataset(6);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 1000;
  config.burn_in = 300;
  config.seed = 14;
  const Chain chain = run_metropolis(lik, Prior::uniform(), config);
  const auto marg = chain.marginal(*data.index_of(10));
  EXPECT_GT(stats::effective_sample_size(marg), 30.0);
}

}  // namespace
}  // namespace because::core
