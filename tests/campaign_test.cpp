#include <gtest/gtest.h>

#include "experiment/campaign.hpp"
#include "experiment/figures.hpp"
#include "stats/descriptive.hpp"
#include "topology/paths.hpp"

namespace because::experiment {
namespace {

/// One small campaign shared by all tests in this file (it is the expensive
/// part; run it once).
const CampaignResult& shared_campaign() {
  static const CampaignResult result = [] {
    CampaignConfig config = CampaignConfig::small();
    config.seed = 1234;
    return run_campaign(config);
  }();
  return result;
}

TEST(Campaign, SitesAreCloseToTier1) {
  const CampaignResult& c = shared_campaign();
  ASSERT_EQ(c.sites.size(), c.config.beacon_sites);
  for (topology::AsId site : c.sites) {
    // Site is a customer of a tier-1 or of a transit (two hops from tier-1).
    bool ok = false;
    for (const topology::Neighbor& nb : c.graph.neighbors(site)) {
      if (nb.relation != topology::Relation::kProvider) continue;
      const topology::Tier t = c.graph.tier(nb.id);
      if (t == topology::Tier::kTier1 || t == topology::Tier::kTransit) ok = true;
    }
    EXPECT_TRUE(ok) << "site " << site;
  }
}

TEST(Campaign, SitesAndUpstreamsNeverDamp) {
  const CampaignResult& c = shared_campaign();
  const auto dampers = c.plan.dampers();
  for (topology::AsId site : c.sites) {
    EXPECT_EQ(dampers.count(site), 0u);
    for (const topology::Neighbor& nb : c.graph.neighbors(site))
      EXPECT_EQ(dampers.count(nb.id), 0u) << "upstream of " << site;
  }
}

TEST(Campaign, DeploysOnePrefixPerSitePerInterval) {
  const CampaignResult& c = shared_campaign();
  EXPECT_EQ(c.beacons.size(), c.config.beacon_sites *
                                  c.config.update_intervals.size() *
                                  c.config.prefixes_per_interval);
  // Anchor + RIPE reference per site.
  EXPECT_EQ(c.anchors.size(), 2 * c.config.beacon_sites);
}

TEST(Campaign, CollectsUpdates) {
  const CampaignResult& c = shared_campaign();
  // Some VP ASs feed a second collector project, so the VP count is at
  // least the configured number of VP ASs.
  EXPECT_GE(c.vps.size(), c.config.vantage_points);
  EXPECT_GT(c.store.size(), 100u);
  EXPECT_GT(c.events_executed, 1000u);
}

TEST(Campaign, InvalidAggregatorsWereDiscarded) {
  const CampaignResult& c = shared_campaign();
  // ~1% of announcements lose the timestamp and must have been dropped.
  EXPECT_GT(c.store.discarded_invalid_aggregator(), 0u);
  for (const collector::RecordedUpdate& r : c.store.all()) {
    if (r.update.is_announcement()) {
      EXPECT_NE(r.update.beacon_timestamp, bgp::kNoBeaconTimestamp);
    }
  }
}

TEST(Campaign, ProducesLabeledPaths) {
  const CampaignResult& c = shared_campaign();
  EXPECT_GT(c.labeled.size(), 10u);
  std::size_t rfd_paths = 0;
  for (const labeling::LabeledPath& p : c.labeled) {
    EXPECT_FALSE(p.path.empty());
    EXPECT_FALSE(topology::has_loop(p.path));
    // Paths end at a beacon site (the origin).
    EXPECT_TRUE(c.site_set().count(p.path.back())) << "path must end at a site";
    if (p.rfd) ++rfd_paths;
  }
  // With ~12% dampers, some paths must show the signature.
  EXPECT_GT(rfd_paths, 0u);
  EXPECT_LT(rfd_paths, c.labeled.size());
}

TEST(Campaign, RfdPathsContainADetectableDamper) {
  const CampaignResult& c = shared_campaign();
  const auto dampers = c.plan.dampers();
  std::size_t with_damper = 0, total = 0;
  for (const labeling::LabeledPath& p : c.labeled) {
    if (!p.rfd) continue;
    ++total;
    for (topology::AsId as : p.path)
      if (dampers.count(as)) {
        ++with_damper;
        break;
      }
  }
  ASSERT_GT(total, 0u);
  // Every RFD-labeled path should be explainable by a planted damper.
  EXPECT_EQ(with_damper, total);
}

TEST(Campaign, LabeledForIntervalFilters) {
  const CampaignResult& c = shared_campaign();
  const auto one_min = c.labeled_for_interval(sim::minutes(1));
  EXPECT_EQ(one_min.size(), c.labeled.size());  // small() has one interval
  EXPECT_TRUE(c.labeled_for_interval(sim::minutes(42)).empty());
}

TEST(Campaign, DeterministicForSeed) {
  CampaignConfig config = CampaignConfig::small();
  config.seed = 77;
  config.vantage_points = 4;
  config.pairs = 2;
  const CampaignResult a = run_campaign(config);
  const CampaignResult b = run_campaign(config);
  EXPECT_EQ(a.store.size(), b.store.size());
  EXPECT_EQ(a.labeled.size(), b.labeled.size());
  ASSERT_EQ(a.plan.deployments.size(), b.plan.deployments.size());
  for (std::size_t i = 0; i < a.labeled.size(); ++i) {
    EXPECT_EQ(a.labeled[i].path, b.labeled[i].path);
    EXPECT_EQ(a.labeled[i].rfd, b.labeled[i].rfd);
  }
}

TEST(Campaign, MonthlyPresetsMirrorSection43) {
  const CampaignConfig march = CampaignConfig::march2020();
  EXPECT_EQ(march.update_intervals,
            (std::vector<sim::Duration>{sim::minutes(1), sim::minutes(2),
                                        sim::minutes(3)}));
  const CampaignConfig april = CampaignConfig::april2020();
  EXPECT_EQ(april.update_intervals,
            (std::vector<sim::Duration>{sim::minutes(5), sim::minutes(10),
                                        sim::minutes(15)}));
  // March waits longer for slowly decaying penalties than April.
  EXPECT_GT(march.break_length, april.break_length);
  // Both Breaks must outlast the 60 min default max-suppress-time.
  EXPECT_GT(april.break_length, sim::minutes(60));
}

TEST(Campaign, BackgroundChurnRecordsExtraPrefixes) {
  CampaignConfig config = CampaignConfig::small();
  config.seed = 41;
  config.background_prefixes = 10;
  config.pairs = 2;
  const CampaignResult c = run_campaign(config);
  EXPECT_EQ(c.background.size(), 10u);
  // At least one churn prefix actually reached a vantage point.
  std::size_t churn_records = 0;
  for (const auto& p : c.background)
    churn_records += c.store.for_prefix(p).size();
  EXPECT_GT(churn_records, 0u);
  // Labeling still keys per beacon prefix: churn does not pollute labels.
  for (const auto& lp : c.labeled) {
    bool is_beacon = false;
    for (const auto& b : c.beacons)
      if (b.prefix == lp.prefix) is_beacon = true;
    EXPECT_TRUE(is_beacon);
  }
}

TEST(Campaign, BeaconPrefixLengthConfigurable) {
  CampaignConfig config = CampaignConfig::small();
  config.seed = 43;
  config.pairs = 2;
  config.beacon_prefix_length = 25;
  const CampaignResult c = run_campaign(config);
  for (const auto& b : c.beacons) EXPECT_EQ(b.prefix.length, 25);
  for (const auto& a : c.anchors) EXPECT_EQ(a.prefix.length, 25);
}

TEST(Campaign, SessionResetInjectionStillProducesLabels) {
  CampaignConfig config = CampaignConfig::small();
  config.seed = 21;
  config.session_resets = 6;
  const CampaignResult c = run_campaign(config);
  EXPECT_GT(c.labeled.size(), 5u);
  // Determinism holds with failure injection too.
  const CampaignResult c2 = run_campaign(config);
  EXPECT_EQ(c.labeled.size(), c2.labeled.size());
  EXPECT_EQ(c.store.size(), c2.store.size());
}

TEST(Campaign, RejectsBadConfig) {
  CampaignConfig config = CampaignConfig::small();
  config.beacon_sites = 0;
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
  config = CampaignConfig::small();
  config.update_intervals.clear();
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
}

// ------------------------------------------------------------ figures

TEST(Figures, LinkSimilarityShares) {
  const CampaignResult& c = shared_campaign();
  const LinkSimilarity sim = link_similarity(c);
  EXPECT_GT(sim.total_links, 0u);
  ASSERT_EQ(sim.share_per_site.size(), c.sites.size());
  for (double share : sim.share_per_site) {
    EXPECT_GT(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
  // Observing from all sites gives more paths per link than a single site.
  EXPECT_GE(sim.median_paths_per_link_all, sim.median_paths_per_link_single);
}

TEST(Figures, ProjectOverlapCoversAllPaths) {
  const CampaignResult& c = shared_campaign();
  const ProjectOverlap overlap = project_overlap(c);
  EXPECT_GT(overlap.total(), 0u);
}

TEST(Figures, PropagationTimesPopulated) {
  const CampaignResult& c = shared_campaign();
  const PropagationTimes times = propagation_times(c);
  ASSERT_FALSE(times.anchor_seconds.empty());
  ASSERT_FALSE(times.ripe_seconds.empty());
  for (double s : times.anchor_seconds) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 600.0);  // noise-artifact samples are filtered out
  }
  // The typical first arrival stays within link + export delays.
  EXPECT_LT(stats::median(times.anchor_seconds), 120.0);
}

TEST(Figures, RdeltaByIntervalOnlyDampedPaths) {
  const CampaignResult& c = shared_campaign();
  const auto rdeltas = rdelta_by_interval(c);
  for (const auto& [interval, values] : rdeltas) {
    EXPECT_EQ(interval, sim::minutes(1));
    for (double v : values) EXPECT_GE(v, 5.0);  // min r-delta filter
  }
}

TEST(Figures, CategoryCountsSumMatches) {
  const std::vector<core::Category> cats{
      core::Category::kHighlyLikelyNot, core::Category::kUncertain,
      core::Category::kUncertain, core::Category::kHighlyLikelyDamping};
  const auto counts = category_counts(cats);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_NEAR(damping_share(cats), 0.25, 1e-12);
}

}  // namespace
}  // namespace because::experiment
