// ParallelCampaignRunner determinism and behaviour (ctest label: concurrency).
//
// The load-bearing property: fanning scenarios across a thread pool is purely
// an execution-order optimisation. Every scenario must come back bit-identical
// to a serial run_campaign() of the same config, at any pool size. The golden
// digest machinery from sim_golden_trace_test is reused in miniature here.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "experiment/parallel_runner.hpp"

namespace because {
namespace {

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t digest_result(const experiment::CampaignResult& result) {
  std::uint64_t hash = 14695981039346656037ULL;
  hash = fnv1a_u64(hash, result.events_executed);
  for (const collector::RecordedUpdate& rec : result.store.all()) {
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, bgp::pack(rec.update.prefix));
    const auto path = result.store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (topology::AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return hash;
}

experiment::CampaignConfig tiny_config() {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.pairs = 1;
  config.burst_length = sim::minutes(6);
  config.break_length = sim::minutes(20);
  config.anchor_cycles = 1;
  config.include_ripe_reference = false;
  return config;
}

experiment::CampaignGrid tiny_grid() {
  experiment::CampaignGrid grid;
  grid.base = tiny_config();
  grid.seeds = {5, 6};
  grid.rfd_presets = experiment::standard_rfd_presets();
  return grid;
}

TEST(ParallelCampaign, GridExpansionIsDeterministic) {
  const auto a = tiny_grid().expand();
  const auto b = tiny_grid().expand();
  ASSERT_EQ(a.size(), 6u);  // 2 seeds x 1 length x 3 presets
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].config.seed, b[i].config.seed);
    EXPECT_EQ(a[i].config.deployment.variant_weights,
              b[i].config.deployment.variant_weights);
  }
  EXPECT_EQ(a[0].name, "len24/paper-mix/seed5");
  EXPECT_EQ(a[5].name, "len24/rfc7454-only/seed6");
}

TEST(ParallelCampaign, ResultsAreBitIdenticalToSerialAtAnyPoolSize) {
  const std::vector<experiment::CampaignScenario> scenarios =
      tiny_grid().expand();

  // Serial reference digests.
  std::vector<std::uint64_t> expected;
  for (const experiment::CampaignScenario& s : scenarios)
    expected.push_back(digest_result(experiment::run_campaign(s.config)));

  for (std::size_t threads : {1u, 2u, 4u}) {
    experiment::ParallelCampaignRunner runner(threads);
    EXPECT_EQ(runner.threads(), threads);
    const std::vector<experiment::CampaignResult> results =
        runner.run(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(digest_result(results[i]), expected[i])
          << "scenario " << scenarios[i].name << " diverged at pool size "
          << threads;
    }
  }
}

TEST(ParallelCampaign, RunsAGridDirectly) {
  experiment::ParallelCampaignRunner runner(2);
  const std::vector<experiment::CampaignResult> results = runner.run(tiny_grid());
  ASSERT_EQ(results.size(), 6u);
  for (const experiment::CampaignResult& r : results) {
    EXPECT_GT(r.events_executed, 0u);
    EXPECT_GT(r.store.size(), 0u);
  }
}

TEST(ParallelCampaign, PropagatesScenarioExceptions) {
  std::vector<experiment::CampaignScenario> scenarios = tiny_grid().expand();
  scenarios[1].config.beacon_sites = 0;  // run_campaign rejects this
  experiment::ParallelCampaignRunner runner(2);
  EXPECT_THROW(runner.run(scenarios), std::invalid_argument);
}

}  // namespace
}  // namespace because
