#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "collector/mrt.hpp"

namespace because::collector {
namespace {

UpdateStore sample_store() {
  UpdateStore store;
  const VpId a = store.register_vp(100, Project::kRipeRis, sim::seconds(40));
  const VpId b = store.register_vp(200, Project::kIsolario, sim::seconds(9));

  bgp::Update announce;
  announce.type = bgp::UpdateType::kAnnouncement;
  announce.prefix = bgp::Prefix{7, 24};
  announce.path = store.paths().intern(topology::AsPath{100, 50, 10});
  announce.beacon_timestamp = sim::minutes(3);
  store.record(a, sim::minutes(4), announce);

  bgp::Update withdraw;
  withdraw.type = bgp::UpdateType::kWithdrawal;
  withdraw.prefix = bgp::Prefix{7, 24};
  store.record(b, sim::minutes(5), withdraw);

  bgp::Update missing = announce;
  missing.beacon_timestamp = bgp::kNoBeaconTimestamp;
  store.record(b, sim::minutes(6), missing);
  return store;
}

TEST(Mrt, RoundTripPreservesEverything) {
  const UpdateStore original = sample_store();
  std::stringstream buffer;
  write_mrt(buffer, original);
  const UpdateStore loaded = read_mrt(buffer);

  ASSERT_EQ(loaded.vantage_points().size(), original.vantage_points().size());
  for (std::size_t i = 0; i < original.vantage_points().size(); ++i) {
    const VpInfo& a = original.vantage_points()[i];
    const VpInfo& b = loaded.vantage_points()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.as, b.as);
    EXPECT_EQ(a.project, b.project);
    EXPECT_EQ(a.export_delay, b.export_delay);
  }

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const RecordedUpdate& a = original.all()[i];
    const RecordedUpdate& b = loaded.all()[i];
    EXPECT_EQ(a.recorded_at, b.recorded_at);
    EXPECT_EQ(a.vp, b.vp);
    EXPECT_EQ(a.update.type, b.update.type);
    EXPECT_EQ(a.update.prefix, b.update.prefix);
    EXPECT_EQ(original.paths().to_path(a.update.path),
              loaded.paths().to_path(b.update.path));
    EXPECT_EQ(a.update.beacon_timestamp, b.update.beacon_timestamp);
  }
}

TEST(Mrt, QueriesWorkOnLoadedStore) {
  std::stringstream buffer;
  write_mrt(buffer, sample_store());
  const UpdateStore loaded = read_mrt(buffer);
  const auto stream = loaded.for_vp_prefix(0, bgp::Prefix{7, 24});
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(loaded.paths().to_path(stream[0].update.path),
            (topology::AsPath{100, 50, 10}));
}

TEST(Mrt, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "becmrt 1\n"
      "\n"
      "VP 0 100 0 1000\n"
      "# another comment\n"
      "U 500 0 A 1/24 100 100 50\n");
  const UpdateStore store = read_mrt(in);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Mrt, RejectsMalformedInput) {
  {
    std::stringstream in("VP 0 100 0 1000\n");  // missing header
    EXPECT_THROW(read_mrt(in), std::runtime_error);
  }
  {
    std::stringstream in("becmrt 99\n");  // bad version
    EXPECT_THROW(read_mrt(in), std::runtime_error);
  }
  {
    std::stringstream in("becmrt 1\nU 5 0 A 1/24 0 7\n");  // unknown VP
    EXPECT_THROW(read_mrt(in), std::runtime_error);
  }
  {
    std::stringstream in("becmrt 1\nVP 0 100 0 0\nU 5 0 W 1/24 -1 7 8\n");
    EXPECT_THROW(read_mrt(in), std::runtime_error);  // withdrawal with path
  }
  {
    std::stringstream in("becmrt 1\nVP 0 100 0 0\nU 5 0 X 1/24 0\n");
    EXPECT_THROW(read_mrt(in), std::runtime_error);  // bad type
  }
  {
    std::stringstream in("becmrt 1\nVP 0 100 7 0\n");  // bad project
    EXPECT_THROW(read_mrt(in), std::runtime_error);
  }
  {
    std::stringstream in("becmrt 1\nXYZ\n");  // unknown tag
    EXPECT_THROW(read_mrt(in), std::runtime_error);
  }
  {
    std::stringstream in("");  // empty
    EXPECT_THROW(read_mrt(in), std::runtime_error);
  }
}

TEST(Mrt, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/because_mrt_test.dump";
  save_mrt_file(path, sample_store());
  const UpdateStore loaded = load_mrt_file(path);
  EXPECT_EQ(loaded.size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(load_mrt_file("/nonexistent/dir/file.dump"), std::runtime_error);
}

}  // namespace
}  // namespace because::collector
