// Tests for the contract layer (src/util/contracts.hpp): the failure-mode
// machinery, the wired-in invariants firing on genuinely corrupted state, and
// the Release compile-out guarantee.
//
// Everything that exercises BECAUSE_ASSERT/BECAUSE_DCHECK is guarded by
// BECAUSE_CONTRACTS_ENABLED so this file also passes under the Release preset,
// where those macros compile to nothing; the compile-out test asserts exactly
// that in the #else branch.
#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "labeling/dataset.hpp"
#include "rfd/params.hpp"
#include "rfd/penalty.hpp"
#include "sim/event_queue.hpp"
#include "stats/rng.hpp"
#include "topology/paths.hpp"
#include "util/contracts.hpp"

namespace because::sim {

// Friend backdoor declared in event_queue.hpp: builds a raw calendar event
// that bypasses schedule_at's past-clamp, the only way to present the engine
// with the "timer fires in the past" state the pop contracts guard against.
struct EventQueueTestPeer {
  static void inject_raw(EventQueue& queue, Time when) {
    EventQueue::Event event;
    event.when = when;
    event.seq = queue.next_seq_++;
    event.fn = [](EventQueue&, void*, std::uint64_t, std::uint64_t) {};
    queue.cal_insert(event);
  }
};

}  // namespace because::sim

namespace {

using because::util::ContractMode;
using because::util::ContractViolation;
using because::util::ScopedContractMode;

TEST(ContractModeTest, ScopedModeSwapsAndRestores) {
  const ContractMode before = because::util::contract_mode();
  {
    ScopedContractMode guard(ContractMode::kThrow);
    EXPECT_EQ(because::util::contract_mode(), ContractMode::kThrow);
    {
      ScopedContractMode inner(ContractMode::kLogAndCount);
      EXPECT_EQ(because::util::contract_mode(), ContractMode::kLogAndCount);
    }
    EXPECT_EQ(because::util::contract_mode(), ContractMode::kThrow);
  }
  EXPECT_EQ(because::util::contract_mode(), before);
}

TEST(ContractModeTest, ThrowModeRaisesContractViolation) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(BECAUSE_CHECK(1 == 2, "one is not " << 2), ContractViolation);
  EXPECT_NO_THROW(BECAUSE_CHECK(1 == 1));
}

TEST(ContractModeTest, ViolationMessageCarriesContext) {
  ScopedContractMode guard(ContractMode::kThrow);
  try {
    BECAUSE_CHECK(false, "detail " << 42);
    FAIL() << "BECAUSE_CHECK(false) did not throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("BECAUSE_CHECK"), std::string::npos) << what;
    EXPECT_NE(what.find("false"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("detail 42"), std::string::npos) << what;
  }
}

TEST(ContractModeTest, LogAndCountModeCountsAndContinues) {
  ScopedContractMode guard(ContractMode::kLogAndCount);
  because::util::reset_contract_violation_count();
  BECAUSE_CHECK(false, "first");
  BECAUSE_CHECK(false, "second");
  BECAUSE_CHECK(true, "not a violation");
  EXPECT_EQ(because::util::contract_violation_count(), 2u);
  because::util::reset_contract_violation_count();
  EXPECT_EQ(because::util::contract_violation_count(), 0u);
}

// BECAUSE_CHECK stays live in every configuration: a NaN success probability
// handed to the RNG must fail identically in Release and Debug.
TEST(WiredContractTest, BernoulliRejectsNanInAllConfigs) {
  ScopedContractMode guard(ContractMode::kThrow);
  because::stats::Rng rng(7);
  EXPECT_THROW(rng.bernoulli(std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
  EXPECT_NO_THROW(rng.bernoulli(0.5));
}

#if BECAUSE_CONTRACTS_ENABLED

TEST(WiredContractTest, CalendarPopDetectsInjectedPastEvent) {
  ScopedContractMode guard(ContractMode::kThrow);
  because::sim::EventQueue queue(because::sim::EngineBackend::kCalendar);
  // Advance the clock past t=0 through the public API.
  queue.schedule_at(because::sim::seconds(10), [] {});
  EXPECT_EQ(queue.run(), 1u);
  EXPECT_EQ(queue.now(), because::sim::seconds(10));
  // A raw event in the past (impossible via schedule_*, which clamps) must
  // trip the pop-monotonicity contract when the engine reaches it.
  because::sim::EventQueueTestPeer::inject_raw(queue,
                                               because::sim::seconds(1));
  EXPECT_THROW(queue.run(), ContractViolation);
}

TEST(WiredContractTest, CalendarPopOrderingHoldsForLegalWorkloads) {
  ScopedContractMode guard(ContractMode::kThrow);
  because::sim::EventQueue queue;
  int fired = 0;
  for (int i = 9; i >= 0; --i)
    queue.schedule_at(because::sim::seconds(i), [&fired] { ++fired; });
  EXPECT_NO_THROW(queue.run());
  EXPECT_EQ(fired, 10);
}

TEST(WiredContractTest, DatasetRejectsOutOfRangeCsrRow) {
  ScopedContractMode guard(ContractMode::kThrow);
  because::labeling::PathDataset dataset;
  dataset.add_path(because::topology::AsPath{1, 2, 3}, true);
  dataset.add_path(because::topology::AsPath{2, 3, 4}, false);
  EXPECT_NO_THROW(dataset.path_nodes(1));
  EXPECT_THROW(dataset.path_nodes(dataset.path_count()), ContractViolation);
  EXPECT_THROW(dataset.shows_property(64), ContractViolation);
}

TEST(WiredContractTest, PenaltyApplyRejectsInvertedThresholds) {
  ScopedContractMode guard(ContractMode::kThrow);
  because::rfd::Params params = because::rfd::cisco_defaults();
  // Inconsistent per RFC 2439 (suppress must exceed reuse); such a preset is
  // rejected by Params::validate(), but apply() must also refuse to run the
  // state machine on it when handed the struct directly.
  params.suppress_threshold = 500.0;
  params.reuse_threshold = 750.0;
  because::rfd::PenaltyState state;
  EXPECT_THROW(state.apply(params, because::rfd::UpdateKind::kWithdrawal,
                           because::sim::seconds(1)),
               ContractViolation);
  EXPECT_NO_THROW(
      because::rfd::PenaltyState{}.apply(because::rfd::cisco_defaults(),
                                         because::rfd::UpdateKind::kWithdrawal,
                                         because::sim::seconds(1)));
}

TEST(CompiledOutTest, AssertEvaluatesConditionWhenEnabled) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  BECAUSE_ASSERT(bump(), "side effect must run exactly once");
  EXPECT_EQ(calls, 1);
  BECAUSE_DCHECK(bump());
  EXPECT_EQ(calls, 2);
}

#else  // Release

TEST(CompiledOutTest, AssertCompilesToNothingInRelease) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return false;  // would be a violation if evaluated
  };
  BECAUSE_ASSERT(bump(), "never evaluated in Release");
  BECAUSE_DCHECK(bump(), "never evaluated in Release");
  EXPECT_EQ(calls, 0);
}

#endif  // BECAUSE_CONTRACTS_ENABLED

}  // namespace
