// Property tests for the hash-consed PathTable.
//
// The table's contract is that PathIds behave exactly like the AsPath vectors
// they replace: intern/to_path round-trips, handle equality is content
// equality, prepend() is push-front, and the loop/prepending helpers agree
// with the reference implementations in topology/paths.hpp on arbitrary
// inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.hpp"
#include "topology/path_table.hpp"

namespace because::topology {
namespace {

AsPath random_path(stats::Rng& rng, std::size_t max_len, AsId max_as) {
  const auto len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  AsPath path(len);
  for (auto& as : path)
    as = static_cast<AsId>(rng.uniform_int(1, static_cast<int>(max_as)));
  return path;
}

TEST(PathTable, EmptyPathIsIdZero) {
  PathTable table;
  EXPECT_EQ(table.intern(AsPath{}), kEmptyPath);
  EXPECT_EQ(table.length(kEmptyPath), 0u);
  EXPECT_TRUE(table.empty(kEmptyPath));
  EXPECT_TRUE(table.span(kEmptyPath).empty());
  EXPECT_EQ(table.to_path(kEmptyPath), AsPath{});
  EXPECT_EQ(table.size(), 1u);  // the empty path is always interned
}

TEST(PathTable, InternRoundTripsArbitraryPaths) {
  PathTable table;
  stats::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const AsPath path = random_path(rng, 12, 50);
    const PathId id = table.intern(path);
    EXPECT_EQ(table.to_path(id), path);
    EXPECT_EQ(table.length(id), path.size());
    const auto span = table.span(id);
    ASSERT_EQ(span.size(), path.size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), path.begin()));
  }
}

TEST(PathTable, HandleEqualityIsContentEquality) {
  PathTable table;
  stats::Rng rng(22);
  std::vector<std::pair<AsPath, PathId>> interned;
  for (int i = 0; i < 300; ++i) {
    const AsPath path = random_path(rng, 8, 6);  // tiny alphabet forces dups
    const PathId id = table.intern(path);
    for (const auto& [other, other_id] : interned) {
      if (other == path) EXPECT_EQ(other_id, id);
      else EXPECT_NE(other_id, id);
    }
    if (std::none_of(interned.begin(), interned.end(),
                     [&](const auto& p) { return p.first == path; }))
      interned.emplace_back(path, id);
  }
}

TEST(PathTable, PrependIsPushFront) {
  PathTable table;
  stats::Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const AsPath tail = random_path(rng, 10, 40);
    const auto head = static_cast<AsId>(rng.uniform_int(1, 40));
    AsPath full;
    full.push_back(head);
    full.insert(full.end(), tail.begin(), tail.end());
    const PathId via_prepend = table.prepend(head, table.intern(tail));
    EXPECT_EQ(via_prepend, table.intern(full));
    EXPECT_EQ(table.head(via_prepend), head);
    EXPECT_EQ(table.tail(via_prepend), table.intern(tail));
  }
}

TEST(PathTable, InternSharesSuffixes) {
  PathTable table;
  const PathId abc = table.intern(AsPath{10, 20, 30});
  // Every suffix of an interned path is itself interned; the chain tails are
  // exactly those suffixes, so no new nodes appear when they are requested.
  const std::size_t before = table.size();
  EXPECT_EQ(table.intern(AsPath{20, 30}), table.tail(abc));
  EXPECT_EQ(table.intern(AsPath{30}), table.tail(table.tail(abc)));
  EXPECT_EQ(table.size(), before);
}

TEST(PathTable, ContainsMatchesLinearSearch) {
  PathTable table;
  stats::Rng rng(24);
  for (int i = 0; i < 200; ++i) {
    const AsPath path = random_path(rng, 10, 12);
    const PathId id = table.intern(path);
    for (AsId as = 1; as <= 12; ++as) {
      const bool expected =
          std::find(path.begin(), path.end(), as) != path.end();
      EXPECT_EQ(table.contains(id, as), expected);
    }
  }
}

TEST(PathTable, LoopAndPrependingAgreeWithReferenceImpls) {
  PathTable table;
  stats::Rng rng(25);
  for (int i = 0; i < 300; ++i) {
    const AsPath path = random_path(rng, 10, 8);  // dups and runs are common
    const PathId id = table.intern(path);
    EXPECT_EQ(table.has_loop(id), has_loop(path));
    const PathId cleaned = table.strip_prepending(id);
    EXPECT_EQ(table.to_path(cleaned), strip_prepending(path));
    // Memoised: asking again returns the identical handle.
    EXPECT_EQ(table.strip_prepending(id), cleaned);
  }
}

TEST(PathTable, TablesAreIndependent) {
  PathTable a;
  PathTable b;
  // Interleave so the same content gets different ids per table history.
  a.intern(AsPath{1});
  const PathId in_a = a.intern(AsPath{7, 8});
  const PathId in_b = b.intern(AsPath{7, 8});
  EXPECT_NE(in_a, in_b);  // ids are table-local...
  EXPECT_EQ(a.to_path(in_a), b.to_path(in_b));  // ...content is not
}

}  // namespace
}  // namespace because::topology
