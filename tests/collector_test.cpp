#include <gtest/gtest.h>

#include "collector/projects.hpp"
#include "collector/update_store.hpp"
#include "collector/vantage_point.hpp"

namespace because::collector {
namespace {

const bgp::Prefix kPrefix{1, 24};

/// Shared interning table for the standalone UpdateStore tests, so announce()
/// ids resolve in every store built from it.
const std::shared_ptr<topology::PathTable>& table() {
  static auto paths = std::make_shared<topology::PathTable>();
  return paths;
}

bgp::Update announce(sim::Time ts) {
  bgp::Update u;
  u.type = bgp::UpdateType::kAnnouncement;
  u.prefix = kPrefix;
  u.path = table()->intern(topology::AsPath{5, 6});
  u.beacon_timestamp = ts;
  return u;
}

TEST(Projects, Names) {
  EXPECT_EQ(to_string(Project::kRipeRis), "RIPE RIS");
  EXPECT_EQ(to_string(Project::kRouteViews), "RouteViews");
  EXPECT_EQ(to_string(Project::kIsolario), "Isolario");
}

TEST(Projects, DelayProfiles) {
  stats::Rng rng(1);
  // RouteViews: exactly 50 s, always.
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(draw_export_delay(Project::kRouteViews, rng), sim::seconds(50));
  // Isolario: within 30 s.
  for (int i = 0; i < 50; ++i) {
    const sim::Duration d = draw_export_delay(Project::kIsolario, rng);
    EXPECT_GE(d, sim::seconds(5));
    EXPECT_LE(d, sim::seconds(30));
  }
  // RIS: diverse, up to 90 s.
  sim::Duration lo = sim::hours(1), hi = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::Duration d = draw_export_delay(Project::kRipeRis, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, sim::seconds(20));
  EXPECT_GT(hi, sim::seconds(60));
}

TEST(UpdateStore, RegisterAndQueryVps) {
  UpdateStore store;
  const VpId a = store.register_vp(10, Project::kRipeRis, sim::seconds(5));
  const VpId b = store.register_vp(11, Project::kIsolario, sim::seconds(9));
  EXPECT_EQ(store.vantage_points().size(), 2u);
  EXPECT_EQ(store.vp(a).as, 10u);
  EXPECT_EQ(store.vp(b).project, Project::kIsolario);
  EXPECT_THROW(store.vp(99), std::out_of_range);
}

TEST(UpdateStore, RecordAndRetrieveByStream) {
  UpdateStore store(table());
  const VpId a = store.register_vp(10, Project::kRipeRis, 0);
  const VpId b = store.register_vp(11, Project::kRipeRis, 0);
  store.record(a, 100, announce(1));
  store.record(b, 150, announce(1));
  store.record(a, 200, announce(2));

  const auto stream_a = store.for_vp_prefix(a, kPrefix);
  ASSERT_EQ(stream_a.size(), 2u);
  EXPECT_EQ(stream_a[0].recorded_at, 100);
  EXPECT_EQ(stream_a[1].recorded_at, 200);

  const auto all = store.for_prefix(kPrefix);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].recorded_at, 150);  // time-sorted across VPs
  EXPECT_EQ(store.size(), 3u);
}

TEST(UpdateStore, UnknownQueriesAreEmpty) {
  UpdateStore store;
  store.register_vp(10, Project::kRipeRis, 0);
  EXPECT_TRUE(store.for_vp_prefix(0, bgp::Prefix{7, 24}).empty());
  EXPECT_TRUE(store.for_prefix(bgp::Prefix{7, 24}).empty());
}

TEST(UpdateStore, RecordRejectsUnknownVp) {
  UpdateStore store(table());
  EXPECT_THROW(store.record(0, 1, announce(1)), std::out_of_range);
}

TEST(UpdateStore, DiscardInvalidAggregators) {
  UpdateStore store(table());
  const VpId a = store.register_vp(10, Project::kRipeRis, 0);
  store.record(a, 100, announce(1));
  bgp::Update missing = announce(2);
  missing.beacon_timestamp = bgp::kNoBeaconTimestamp;
  store.record(a, 150, missing);
  bgp::Update w;
  w.type = bgp::UpdateType::kWithdrawal;
  w.prefix = kPrefix;
  store.record(a, 200, w);

  store.discard_invalid_aggregators();
  EXPECT_EQ(store.discarded_invalid_aggregator(), 1u);
  const auto stream = store.for_vp_prefix(a, kPrefix);
  ASSERT_EQ(stream.size(), 2u);  // the valid A and the W survive
  EXPECT_TRUE(stream[0].update.is_announcement());
  EXPECT_TRUE(stream[1].update.is_withdrawal());
}

TEST(VantagePoint, RecordsRouterExportsWithDelay) {
  topology::AsGraph graph;
  graph.add_as(1, topology::Tier::kStub);
  graph.add_as(2, topology::Tier::kTier1);
  graph.add_provider_customer(2, 1);

  sim::EventQueue queue;
  stats::Rng rng(3);
  bgp::Network net(graph, bgp::NetworkConfig{}, queue, rng);

  UpdateStore store(net.paths());
  VantagePointConfig config;
  config.as = 2;
  config.project = Project::kRouteViews;  // fixed 50 s export delay
  const VpId vp = attach_vantage_point(net, store, config, rng);

  net.router(1).originate(kPrefix, 0);
  queue.run();

  const auto stream = store.for_vp_prefix(vp, kPrefix);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_TRUE(stream[0].update.is_announcement());
  // Path starts at the VP AS and ends at the origin.
  EXPECT_EQ(store.paths().to_path(stream[0].update.path),
            (topology::AsPath{2, 1}));
  // Recorded >= link delay + 50 s export delay.
  EXPECT_GE(stream[0].recorded_at, sim::seconds(50));
}

TEST(VantagePoint, NoiseDropsAggregatorTimestamps) {
  topology::AsGraph graph;
  graph.add_as(1, topology::Tier::kStub);
  graph.add_as(2, topology::Tier::kTier1);
  graph.add_provider_customer(2, 1);

  sim::EventQueue queue;
  stats::Rng rng(5);
  bgp::Network net(graph, bgp::NetworkConfig{}, queue, rng);

  UpdateStore store(net.paths());
  VantagePointConfig config;
  config.as = 2;
  config.missing_aggregator_prob = 1.0;  // every announcement loses its ts
  const VpId vp = attach_vantage_point(net, store, config, rng);

  net.router(1).originate(kPrefix, 7);
  queue.run();

  const auto stream = store.for_vp_prefix(vp, kPrefix);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].update.beacon_timestamp, bgp::kNoBeaconTimestamp);
}

}  // namespace
}  // namespace because::collector
