#include <gtest/gtest.h>

#include "experiment/robustness.hpp"

namespace because::experiment {
namespace {

TEST(Robustness, SweepsAcrossSeedsAndAggregates) {
  CampaignConfig config = CampaignConfig::small();
  config.pairs = 2;
  config.vantage_points = 10;
  const auto summary = run_seed_sweep(config, InferenceConfig::fast(),
                                      {3u, 5u, 8u});
  ASSERT_EQ(summary.outcomes.size(), 3u);
  for (const auto& o : summary.outcomes) {
    EXPECT_GT(o.labeled_paths, 0u);
    EXPECT_GT(o.measured_ases, 0u);
    EXPECT_GE(o.precision, 0.0);
    EXPECT_LE(o.precision, 1.0);
  }
  EXPECT_GE(summary.mean_precision, summary.min_precision);
  EXPECT_GE(summary.mean_recall, summary.min_recall);
}

TEST(Robustness, DistinctSeedsProduceDistinctCampaigns) {
  CampaignConfig config = CampaignConfig::small();
  config.pairs = 2;
  config.vantage_points = 8;
  const auto summary = run_seed_sweep(config, InferenceConfig::fast(),
                                      {1u, 2u});
  EXPECT_NE(summary.outcomes[0].labeled_paths,
            summary.outcomes[1].labeled_paths);
}

TEST(Robustness, RejectsEmptySeedList) {
  EXPECT_THROW(run_seed_sweep(CampaignConfig::small(), InferenceConfig::fast(),
                              {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace because::experiment
