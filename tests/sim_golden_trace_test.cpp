// Golden-trace determinism lock for the simulation engine.
//
// A small fixed-seed Burst/Break campaign (with anchors, background churn and
// session resets, so every event kind is exercised) is reduced to a compact
// digest: the executed-event count plus an FNV-1a hash over the full collector
// update stream. The expected constants below were captured from the seed
// engine (std::function heap, PR 1); any engine change that alters the
// observable behaviour of the simulator — event ordering, RNG consumption
// order, delivery timing — shows up as a digest mismatch. The typed calendar
// engine must reproduce the seed trace bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>

#include "experiment/campaign.hpp"

namespace because {
namespace {

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

/// Hash every recorded update: receive time, vantage point, update type,
/// prefix, beacon timestamp and the full AS path.
std::uint64_t digest_store(const collector::UpdateStore& store) {
  std::uint64_t hash = kFnvOffset;
  for (const collector::RecordedUpdate& rec : store.all()) {
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, (static_cast<std::uint64_t>(rec.update.prefix.id) << 8) |
                               rec.update.prefix.length);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.beacon_timestamp));
    const auto path = store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (topology::AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return hash;
}

experiment::CampaignConfig golden_config() {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.pairs = 2;
  config.burst_length = sim::minutes(12);
  config.break_length = sim::minutes(50);
  config.anchor_cycles = 1;
  config.background_prefixes = 4;
  config.session_resets = 2;
  config.seed = 7;
  return config;
}

// Captured from the seed engine; see file comment.
constexpr std::uint64_t kExpectedEvents = 155320;
constexpr std::uint64_t kExpectedRecords = 18165;
constexpr std::uint64_t kExpectedDigest = 1359638636144856509ULL;

TEST(SimGoldenTrace, CampaignTraceMatchesSeedEngine) {
  const experiment::CampaignResult result = experiment::run_campaign(golden_config());
  EXPECT_EQ(result.events_executed, kExpectedEvents);
  EXPECT_EQ(result.store.size(), kExpectedRecords);
  EXPECT_EQ(digest_store(result.store), kExpectedDigest);
}

TEST(SimGoldenTrace, FunctionHeapBackendMatchesSeedEngine) {
  experiment::CampaignConfig config = golden_config();
  config.engine = sim::EngineBackend::kFunctionHeap;
  const experiment::CampaignResult result = experiment::run_campaign(config);
  EXPECT_EQ(result.events_executed, kExpectedEvents);
  EXPECT_EQ(result.store.size(), kExpectedRecords);
  EXPECT_EQ(digest_store(result.store), kExpectedDigest);
}

TEST(SimGoldenTrace, MapRibBackendMatchesSeedEngine) {
  // The reference RIB backend (the seed's nested unordered_maps, kept
  // verbatim) must still reproduce the captured trace; together with the
  // default-kFlat test above this pins both storage backends to the same
  // observable behaviour.
  experiment::CampaignConfig config = golden_config();
  config.network.rib_backend = bgp::RibBackend::kMap;
  const experiment::CampaignResult result = experiment::run_campaign(config);
  EXPECT_EQ(result.events_executed, kExpectedEvents);
  EXPECT_EQ(result.store.size(), kExpectedRecords);
  EXPECT_EQ(digest_store(result.store), kExpectedDigest);
}

TEST(SimGoldenTrace, TraceIsReproducibleAcrossRuns) {
  const experiment::CampaignResult a = experiment::run_campaign(golden_config());
  const experiment::CampaignResult b = experiment::run_campaign(golden_config());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(digest_store(a.store), digest_store(b.store));
}

}  // namespace
}  // namespace because
