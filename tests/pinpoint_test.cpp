#include <gtest/gtest.h>

#include "core/pinpoint.hpp"
#include "stats/rng.hpp"

namespace because::core {
namespace {

/// Chain where coordinate `hot` is consistently the largest.
Chain chain_with_hot(std::size_t dim, std::size_t hot, std::size_t samples) {
  Chain chain(dim);
  stats::Rng rng(1);
  std::vector<double> p(dim);
  for (std::size_t t = 0; t < samples; ++t) {
    for (std::size_t i = 0; i < dim; ++i)
      p[i] = (i == hot) ? rng.uniform(0.5, 0.9) : rng.uniform(0.0, 0.3);
    chain.push(p);
  }
  return chain;
}

TEST(Pinpoint, UpgradesMostLikelyDamper) {
  labeling::PathDataset d;
  d.add_path({701, 2497}, true);  // RFD path with no cat-4/5 AS
  d.add_path({2497}, false);
  const auto chain = chain_with_hot(d.as_count(), *d.index_of(701), 200);

  std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  const auto result = pinpoint_inconsistent(chain, d, cats, 0.8);
  EXPECT_EQ(result.categories[*d.index_of(701)], Category::kLikelyDamping);
  EXPECT_EQ(result.categories[*d.index_of(2497)], Category::kLikelyNot);
  ASSERT_EQ(result.upgraded.size(), 1u);
  EXPECT_EQ(result.upgraded[0], 701u);
  EXPECT_EQ(result.unexplained_paths, 0u);
}

TEST(Pinpoint, ExplainedPathsUntouched) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  const auto chain = chain_with_hot(d.as_count(), *d.index_of(20), 100);

  std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  cats[*d.index_of(10)] = Category::kHighlyLikelyDamping;  // already explained
  const auto result = pinpoint_inconsistent(chain, d, cats, 0.8);
  EXPECT_TRUE(result.upgraded.empty());
  EXPECT_EQ(result.categories[*d.index_of(20)], Category::kLikelyNot);
}

TEST(Pinpoint, AmbiguousPathStaysUnexplained) {
  // Two coordinates with identical distributions: neither wins > 80%.
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  Chain chain(2);
  stats::Rng rng(2);
  for (int t = 0; t < 400; ++t) {
    chain.push(std::vector<double>{rng.uniform(), rng.uniform()});
  }
  std::vector<Category> cats(2, Category::kUncertain);
  const auto result = pinpoint_inconsistent(chain, d, cats, 0.8);
  EXPECT_TRUE(result.upgraded.empty());
  EXPECT_EQ(result.unexplained_paths, 1u);
}

TEST(Pinpoint, CleanPathsIgnored) {
  labeling::PathDataset d;
  d.add_path({10, 20}, false);
  const auto chain = chain_with_hot(2, 0, 100);
  std::vector<Category> cats(2, Category::kLikelyNot);
  const auto result = pinpoint_inconsistent(chain, d, cats, 0.8);
  EXPECT_TRUE(result.upgraded.empty());
  EXPECT_EQ(result.unexplained_paths, 0u);
}

TEST(Pinpoint, OneUpgradeExplainsAllItsPaths) {
  // The same hot AS sits on several unexplained RFD paths; it must be
  // upgraded once and explain all of them.
  labeling::PathDataset d;
  d.add_path({701, 20}, true);
  d.add_path({701, 30}, true);
  d.add_path({701, 40}, true);
  const auto chain = chain_with_hot(d.as_count(), *d.index_of(701), 200);
  std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  const auto result = pinpoint_inconsistent(chain, d, cats, 0.8);
  EXPECT_EQ(result.upgraded.size(), 1u);
  EXPECT_EQ(result.unexplained_paths, 0u);
}

TEST(Pinpoint, NoiseGuardSkipsImplausiblePaths) {
  // A "shows" path whose posterior says it is almost surely undamped
  // (both coordinates hover near 0) should be attributed to label noise
  // rather than force an upgrade.
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  Chain chain(2);
  stats::Rng rng(9);
  for (int t = 0; t < 300; ++t)
    chain.push(std::vector<double>{rng.uniform(0.03, 0.06),
                                   rng.uniform(0.0, 0.02)});
  std::vector<Category> cats(2, Category::kLikelyNot);

  const auto guarded = pinpoint_inconsistent(chain, d, cats, 0.8, 0.5);
  EXPECT_TRUE(guarded.upgraded.empty());
  EXPECT_EQ(guarded.noise_explained_paths, 1u);
  EXPECT_EQ(guarded.unexplained_paths, 0u);

  // Without the guard the same chain would still upgrade (10 wins argmax).
  const auto unguarded = pinpoint_inconsistent(chain, d, cats, 0.8, 0.0);
  EXPECT_EQ(unguarded.noise_explained_paths, 0u);
  EXPECT_FALSE(unguarded.upgraded.empty());
}

TEST(Pinpoint, NoiseGuardKeepsPlausiblePaths) {
  // The guard must not block genuinely damped-looking paths.
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  const auto chain = chain_with_hot(2, 0, 200);  // p10 ~ U(0.5, 0.9)
  std::vector<Category> cats(2, Category::kLikelyNot);
  const auto result = pinpoint_inconsistent(chain, d, cats, 0.8, 0.5);
  EXPECT_EQ(result.noise_explained_paths, 0u);
  ASSERT_EQ(result.upgraded.size(), 1u);
  EXPECT_EQ(result.upgraded[0], 10u);
}

TEST(Pinpoint, Validation) {
  labeling::PathDataset d;
  d.add_path({10}, true);
  Chain chain(1);
  chain.push(std::vector<double>{0.5});
  EXPECT_THROW(
      pinpoint_inconsistent(chain, d, std::vector<Category>(2, Category::kUncertain)),
      std::invalid_argument);
  Chain wrong_dim(2);
  wrong_dim.push(std::vector<double>{0.5, 0.5});
  EXPECT_THROW(
      pinpoint_inconsistent(wrong_dim, d,
                            std::vector<Category>(1, Category::kUncertain)),
      std::invalid_argument);
  Chain empty(1);
  EXPECT_THROW(
      pinpoint_inconsistent(empty, d,
                            std::vector<Category>(1, Category::kUncertain)),
      std::invalid_argument);
}

}  // namespace
}  // namespace because::core
