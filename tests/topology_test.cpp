#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "stats/rng.hpp"
#include "topology/as_graph.hpp"
#include "topology/caida.hpp"
#include "topology/generator.hpp"
#include "topology/paths.hpp"

namespace because::topology {
namespace {

AsGraph diamond() {
  // 1 (tier1) over 2,3 (transit), both over 4 (stub); 2-3 peer.
  AsGraph g;
  g.add_as(1, Tier::kTier1);
  g.add_as(2, Tier::kTransit);
  g.add_as(3, Tier::kTransit);
  g.add_as(4, Tier::kStub);
  g.add_provider_customer(1, 2);
  g.add_provider_customer(1, 3);
  g.add_provider_customer(2, 4);
  g.add_provider_customer(3, 4);
  g.add_peering(2, 3);
  return g;
}

// ---------------------------------------------------------------- AsGraph

TEST(AsGraph, RelationshipsAreReciprocal) {
  const AsGraph g = diamond();
  EXPECT_EQ(g.relation(1, 2), Relation::kCustomer);
  EXPECT_EQ(g.relation(2, 1), Relation::kProvider);
  EXPECT_EQ(g.relation(2, 3), Relation::kPeer);
  EXPECT_EQ(g.relation(3, 2), Relation::kPeer);
}

TEST(AsGraph, RelationOfNonAdjacent) {
  const AsGraph g = diamond();
  EXPECT_FALSE(g.relation(1, 4).has_value());
}

TEST(AsGraph, ReverseRelation) {
  EXPECT_EQ(reverse(Relation::kCustomer), Relation::kProvider);
  EXPECT_EQ(reverse(Relation::kProvider), Relation::kCustomer);
  EXPECT_EQ(reverse(Relation::kPeer), Relation::kPeer);
}

TEST(AsGraph, RejectsSelfLink) {
  AsGraph g;
  g.add_as(1, Tier::kTier1);
  EXPECT_THROW(g.add_peering(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_provider_customer(1, 1), std::invalid_argument);
}

TEST(AsGraph, RejectsDuplicateLink) {
  AsGraph g = diamond();
  EXPECT_THROW(g.add_peering(2, 3), std::invalid_argument);
  EXPECT_THROW(g.add_provider_customer(1, 2), std::invalid_argument);
  EXPECT_THROW(g.add_provider_customer(2, 1), std::invalid_argument);
}

TEST(AsGraph, RejectsTierChange) {
  AsGraph g;
  g.add_as(1, Tier::kTier1);
  g.add_as(1, Tier::kTier1);  // idempotent
  EXPECT_THROW(g.add_as(1, Tier::kStub), std::invalid_argument);
}

TEST(AsGraph, UnknownAsThrows) {
  const AsGraph g = diamond();
  EXPECT_THROW(g.neighbors(99), std::out_of_range);
  EXPECT_THROW(g.tier(99), std::out_of_range);
}

TEST(AsGraph, NeighborsWithFilters) {
  const AsGraph g = diamond();
  const auto customers = g.neighbors_with(1, Relation::kCustomer);
  EXPECT_EQ(customers.size(), 2u);
  const auto peers = g.neighbors_with(2, Relation::kPeer);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], 3u);
}

TEST(AsGraph, CountsAndIds) {
  const AsGraph g = diamond();
  EXPECT_EQ(g.as_count(), 4u);
  EXPECT_EQ(g.link_count(), 5u);
  EXPECT_EQ(g.as_ids(), (std::vector<AsId>{1, 2, 3, 4}));
}

// ---------------------------------------------------------------- paths

TEST(Paths, LoopDetection) {
  EXPECT_TRUE(has_loop({1, 2, 1}));
  EXPECT_FALSE(has_loop({1, 2, 3}));
  EXPECT_FALSE(has_loop({}));
}

TEST(Paths, StripPrepending) {
  EXPECT_EQ(strip_prepending({1, 1, 2, 3, 3, 3}), (AsPath{1, 2, 3}));
  EXPECT_EQ(strip_prepending({1, 2, 3}), (AsPath{1, 2, 3}));
  EXPECT_EQ(strip_prepending({}), AsPath{});
  // Prepending removal keeps non-consecutive duplicates (real loops).
  EXPECT_EQ(strip_prepending({1, 2, 1}), (AsPath{1, 2, 1}));
}

TEST(Paths, ValleyFreeAccepts) {
  const AsGraph g = diamond();
  // Origin 4 -> up to 2 -> up to 1 (observer): pure climb.
  EXPECT_TRUE(is_valley_free(g, {1, 2, 4}));
  // Peer crossing at the top: 4 up to 2, peer to 3 (observer).
  EXPECT_TRUE(is_valley_free(g, {3, 2, 4}));
  // Down only: 1 -> 2 observed from below? origin 1, down to 2, down to 4.
  EXPECT_TRUE(is_valley_free(g, {4, 2, 1}));
}

TEST(Paths, ValleyFreeRejectsValley) {
  AsGraph g = diamond();
  // Path 2 -> 4 -> 3 read as origin 3, down to 4, then up to 2: a valley.
  EXPECT_FALSE(is_valley_free(g, {2, 4, 3}));
}

TEST(Paths, ValleyFreeRejectsNonAdjacent) {
  const AsGraph g = diamond();
  EXPECT_FALSE(is_valley_free(g, {1, 4}));
}

TEST(Paths, ValleyFreeTrivialPaths) {
  const AsGraph g = diamond();
  EXPECT_TRUE(is_valley_free(g, {1}));
  EXPECT_TRUE(is_valley_free(g, {}));
}

TEST(Paths, ValleyFreeRejectsDoublePeer) {
  AsGraph g;
  g.add_as(1, Tier::kTransit);
  g.add_as(2, Tier::kTransit);
  g.add_as(3, Tier::kTransit);
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  // Origin 3, peer to 2, peer to 1: two peer crossings are not valley-free.
  EXPECT_FALSE(is_valley_free(g, {1, 2, 3}));
}

TEST(Paths, CustomerCone) {
  const AsGraph g = diamond();
  const auto cone1 = customer_cone(g, 1);
  EXPECT_EQ(cone1.size(), 3u);  // 2, 3, 4
  const auto cone2 = customer_cone(g, 2);
  EXPECT_EQ(cone2.size(), 1u);
  EXPECT_TRUE(cone2.count(4));
  EXPECT_EQ(customer_cone_size(g, 4), 0u);
}

TEST(Paths, LinksOnPathNormalised) {
  const auto links = links_on_path({3, 1, 2});
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], std::make_pair(AsId{1}, AsId{3}));
  EXPECT_EQ(links[1], std::make_pair(AsId{1}, AsId{2}));
}

TEST(Paths, LinksOnShortPaths) {
  EXPECT_TRUE(links_on_path({1}).empty());
  EXPECT_TRUE(links_on_path({}).empty());
}

// ---------------------------------------------------------------- generator

TEST(Generator, ProducesRequestedCounts) {
  GeneratorConfig config;
  config.tier1_count = 4;
  config.transit_count = 20;
  config.stub_count = 50;
  stats::Rng rng(1);
  const AsGraph g = generate(config, rng);
  EXPECT_EQ(g.as_count(), 74u);

  std::size_t t1 = 0, tr = 0, st = 0;
  for (AsId as : g.as_ids()) {
    switch (g.tier(as)) {
      case Tier::kTier1: ++t1; break;
      case Tier::kTransit: ++tr; break;
      case Tier::kStub: ++st; break;
    }
  }
  EXPECT_EQ(t1, 4u);
  EXPECT_EQ(tr, 20u);
  EXPECT_EQ(st, 50u);
}

TEST(Generator, Tier1Clique) {
  GeneratorConfig config;
  config.tier1_count = 5;
  config.transit_count = 0;
  config.stub_count = 0;
  config.stub_tier1_provider_prob = 1.0;
  stats::Rng rng(2);
  const AsGraph g = generate(config, rng);
  const auto ids = g.as_ids();
  for (std::size_t i = 0; i < ids.size(); ++i)
    for (std::size_t j = i + 1; j < ids.size(); ++j)
      EXPECT_EQ(g.relation(ids[i], ids[j]), Relation::kPeer);
}

TEST(Generator, EveryNonTier1HasAProvider) {
  GeneratorConfig config;
  stats::Rng rng(3);
  const AsGraph g = generate(config, rng);
  for (AsId as : g.as_ids()) {
    if (g.tier(as) == Tier::kTier1) continue;
    EXPECT_FALSE(g.neighbors_with(as, Relation::kProvider).empty())
        << "AS " << as << " has no provider";
  }
}

TEST(Generator, Tier1sHaveNoProviders) {
  GeneratorConfig config;
  stats::Rng rng(4);
  const AsGraph g = generate(config, rng);
  for (AsId as : g.as_ids()) {
    if (g.tier(as) != Tier::kTier1) continue;
    EXPECT_TRUE(g.neighbors_with(as, Relation::kProvider).empty());
  }
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig config;
  config.transit_count = 30;
  config.stub_count = 80;
  stats::Rng a(7), b(7);
  const AsGraph g1 = generate(config, a);
  const AsGraph g2 = generate(config, b);
  EXPECT_EQ(g1.as_count(), g2.as_count());
  EXPECT_EQ(g1.link_count(), g2.link_count());
  for (AsId as : g1.as_ids()) {
    const auto& n1 = g1.neighbors(as);
    const auto& n2 = g2.neighbors(as);
    ASSERT_EQ(n1.size(), n2.size());
    for (std::size_t i = 0; i < n1.size(); ++i) {
      EXPECT_EQ(n1[i].id, n2[i].id);
      EXPECT_EQ(n1[i].relation, n2[i].relation);
    }
  }
}

TEST(Generator, RejectsDegenerateConfigs) {
  stats::Rng rng(1);
  GeneratorConfig no_tier1;
  no_tier1.tier1_count = 0;
  EXPECT_THROW(generate(no_tier1, rng), std::invalid_argument);

  GeneratorConfig bad_range;
  bad_range.transit_min_providers = 3;
  bad_range.transit_max_providers = 1;
  EXPECT_THROW(generate(bad_range, rng), std::invalid_argument);
}

TEST(Generator, StubsHaveNoCustomers) {
  GeneratorConfig config;
  stats::Rng rng(9);
  const AsGraph g = generate(config, rng);
  for (AsId as : g.as_ids()) {
    if (g.tier(as) != Tier::kStub) continue;
    EXPECT_TRUE(g.neighbors_with(as, Relation::kCustomer).empty());
  }
}

class GeneratorSizeSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(GeneratorSizeSweep, ConnectedToCore) {
  // Every AS should be able to climb provider links to a tier-1.
  GeneratorConfig config;
  config.transit_count = std::get<0>(GetParam());
  config.stub_count = std::get<1>(GetParam());
  stats::Rng rng(11);
  const AsGraph g = generate(config, rng);
  for (AsId as : g.as_ids()) {
    AsId current = as;
    int hops = 0;
    while (g.tier(current) != Tier::kTier1 && hops < 32) {
      const auto providers = g.neighbors_with(current, Relation::kProvider);
      ASSERT_FALSE(providers.empty()) << "AS " << current << " stranded";
      current = providers.front();
      ++hops;
    }
    EXPECT_EQ(g.tier(current), Tier::kTier1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizeSweep,
                         ::testing::Values(std::make_tuple(10u, 20u),
                                           std::make_tuple(40u, 100u),
                                           std::make_tuple(80u, 300u)));

// ------------------------------------------------- internet_like calibration

std::uint64_t fnv1a_text(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

TEST(InternetLike, SameSeedIsByteIdenticalAtTenThousandAses) {
  stats::Rng a(13), b(13);
  const AsGraph g1 = generate(internet_like(10'000), a);
  const AsGraph g2 = generate(internet_like(10'000), b);
  // The serial-2 rendering is canonical, so byte equality is whole-graph
  // equality: same ASes, same links, same relationships.
  EXPECT_EQ(to_caida_text(g1), to_caida_text(g2));
}

// Structural bounds every calibrated graph must satisfy, independent of seed
// (see EXPERIMENTS.md "Topology validation" for measured distributions).
void expect_internet_like_shape(const AsGraph& g) {
  ASSERT_EQ(g.as_count(), 10'000u);
  std::size_t t1 = 0, tr = 0, st = 0, max_customers = 0, total_customers = 0;
  for (AsId as : g.as_ids()) {
    switch (g.tier(as)) {
      case Tier::kTier1: ++t1; break;
      case Tier::kTransit: ++tr; break;
      case Tier::kStub: ++st; break;
    }
    const std::size_t customers = g.neighbors_with(as, Relation::kCustomer).size();
    max_customers = std::max(max_customers, customers);
    total_customers += customers;
  }
  // The tier split is a deterministic function of the size: ~16-AS clique,
  // 15% transit, 85% stub (the measured Internet's rough proportions).
  EXPECT_EQ(t1, 16u);
  EXPECT_EQ(tr, 1'500u);
  EXPECT_EQ(st, 8'484u);
  EXPECT_GE(g.link_count(), 14'000u);
  EXPECT_LE(g.link_count(), 25'000u);

  // Heavy-tailed provider degrees: preferential attachment concentrates
  // customers onto hub providers an order of magnitude above the mean
  // (measured: max ~400-500 vs mean ~11 at this size).
  const double mean_customers =
      static_cast<double>(total_customers) / static_cast<double>(t1 + tr);
  EXPECT_GE(static_cast<double>(max_customers), 15.0 * mean_customers);
  EXPECT_GE(max_customers, 200u);

  // Customer cones: the biggest tier-1 sees most of the Internet below it
  // (CAIDA ranks the largest real cones at ~90% of all ASes).
  std::size_t max_cone = 0;
  for (AsId as : g.as_ids())
    if (g.tier(as) == Tier::kTier1)
      max_cone = std::max(max_cone, customer_cone_size(g, as));
  EXPECT_GE(max_cone, (g.as_count() * 80) / 100);
}

TEST(InternetLike, DifferentSeedsAreDistinctButBothCalibrated) {
  stats::Rng a(13), b(14);
  const AsGraph g1 = generate(internet_like(10'000), a);
  const AsGraph g2 = generate(internet_like(10'000), b);
  EXPECT_NE(to_caida_text(g1), to_caida_text(g2));
  expect_internet_like_shape(g1);
  expect_internet_like_shape(g2);
}

TEST(InternetLike, PreferentialAttachmentSkewsDegrees) {
  GeneratorConfig calibrated = internet_like(10'000);
  GeneratorConfig uniform = calibrated;
  uniform.preferential_attachment = 0.0;
  stats::Rng a(21), b(21);
  const AsGraph skewed = generate(calibrated, a);
  const AsGraph flat = generate(uniform, b);
  auto max_customers = [](const AsGraph& g) {
    std::size_t best = 0;
    for (AsId as : g.as_ids())
      best = std::max(best, g.neighbors_with(as, Relation::kCustomer).size());
    return best;
  };
  // Same counts, same seed, clearly different concentration. (The uniform
  // draw already concentrates some customers on the 16 tier-1s, so the
  // attachment skew shows up as a ~2-3x jump in the hub degree, not orders
  // of magnitude.)
  EXPECT_GE(max_customers(skewed), 2 * max_customers(flat));
}

TEST(InternetLike, RejectsTinySizes) {
  EXPECT_THROW(internet_like(63), std::invalid_argument);
  (void)internet_like(64);
}

TEST(Generator, LegacyRngStreamUnchangedCanary) {
  // Golden canary for the preferential_attachment=0 contract: the default
  // config must generate the exact pre-preferential-attachment graph AND
  // leave the RNG at the exact same stream position (an extra draw anywhere
  // shifts every seeded experiment downstream). If this fails, the generator
  // consumed a different draw sequence — that is a breaking change to every
  // committed digest, not a number to casually update.
  stats::Rng rng(7);
  const AsGraph g = generate(GeneratorConfig{}, rng);
  EXPECT_EQ(g.link_count(), 1'192u);
  EXPECT_EQ(fnv1a_text(to_caida_text(g)), 14538912147956031253ULL);
  EXPECT_EQ(rng.uniform_int(0, 1'000'000), 771'168u);
}

}  // namespace
}  // namespace because::topology
