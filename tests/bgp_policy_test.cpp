#include <gtest/gtest.h>

#include "bgp/policy.hpp"

namespace because::bgp {
namespace {

using topology::Relation;

topology::PathTable& table() {
  static topology::PathTable paths;
  return paths;
}

Route make_route(const std::vector<topology::AsId>& path) {
  Route r;
  r.prefix = Prefix{1, 24};
  r.path = table().intern(std::span<const topology::AsId>(path));
  return r;
}

TEST(Policy, LocalPrefOrdering) {
  EXPECT_GT(local_pref(Relation::kCustomer), local_pref(Relation::kPeer));
  EXPECT_GT(local_pref(Relation::kPeer), local_pref(Relation::kProvider));
}

TEST(Policy, PrefersCustomerOverShorterProviderPath) {
  const Route customer_route = make_route({10, 20, 30});
  const Route provider_route = make_route({40});
  const Candidate a{10, Relation::kCustomer, &customer_route};
  const Candidate b{40, Relation::kProvider, &provider_route};
  EXPECT_TRUE(prefer(a, b, table()));
  EXPECT_FALSE(prefer(b, a, table()));
}

TEST(Policy, PrefersShorterPathAtSamePref) {
  const Route shorter = make_route({10, 30});
  const Route longer = make_route({20, 30, 40});
  const Candidate a{10, Relation::kPeer, &shorter};
  const Candidate b{20, Relation::kPeer, &longer};
  EXPECT_TRUE(prefer(a, b, table()));
  EXPECT_FALSE(prefer(b, a, table()));
}

TEST(Policy, TieBreaksByLowestNeighbor) {
  const Route r1 = make_route({10, 30});
  const Route r2 = make_route({20, 30});
  const Candidate a{10, Relation::kPeer, &r1};
  const Candidate b{20, Relation::kPeer, &r2};
  EXPECT_TRUE(prefer(a, b, table()));
  EXPECT_FALSE(prefer(b, a, table()));
}

TEST(Policy, LocalRouteBeatsEverything) {
  const Route local = make_route({});
  const Route learned = make_route({10});
  const Candidate a{std::nullopt, Relation::kCustomer, &local};
  const Candidate b{10, Relation::kCustomer, &learned};
  EXPECT_TRUE(prefer(a, b, table()));
  EXPECT_FALSE(prefer(b, a, table()));
}

TEST(Policy, PreferIsIrreflexive) {
  const Route r = make_route({10, 30});
  const Candidate a{10, Relation::kPeer, &r};
  EXPECT_FALSE(prefer(a, a, table()));
}

TEST(Policy, PreferRejectsNullRoute) {
  const Route r = make_route({10});
  const Candidate ok{10, Relation::kPeer, &r};
  const Candidate bad{11, Relation::kPeer, nullptr};
  EXPECT_THROW(prefer(ok, bad, table()), std::invalid_argument);
}

TEST(Policy, ExportRulesGaoRexford) {
  // Customer routes go everywhere.
  EXPECT_TRUE(should_export(Relation::kCustomer, Relation::kCustomer));
  EXPECT_TRUE(should_export(Relation::kCustomer, Relation::kPeer));
  EXPECT_TRUE(should_export(Relation::kCustomer, Relation::kProvider));
  // Peer routes only to customers.
  EXPECT_TRUE(should_export(Relation::kPeer, Relation::kCustomer));
  EXPECT_FALSE(should_export(Relation::kPeer, Relation::kPeer));
  EXPECT_FALSE(should_export(Relation::kPeer, Relation::kProvider));
  // Provider routes only to customers.
  EXPECT_TRUE(should_export(Relation::kProvider, Relation::kCustomer));
  EXPECT_FALSE(should_export(Relation::kProvider, Relation::kPeer));
  EXPECT_FALSE(should_export(Relation::kProvider, Relation::kProvider));
}

TEST(Policy, OwnRoutesExportEverywhere) {
  EXPECT_TRUE(should_export(std::nullopt, Relation::kCustomer));
  EXPECT_TRUE(should_export(std::nullopt, Relation::kPeer));
  EXPECT_TRUE(should_export(std::nullopt, Relation::kProvider));
}

}  // namespace
}  // namespace because::bgp
