#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prior.hpp"
#include "stats/descriptive.hpp"

namespace because::core {
namespace {

TEST(Prior, UniformHasZeroLogDensity) {
  const Prior u = Prior::uniform();
  EXPECT_NEAR(u.log_density_coord(0.3), 0.0, 1e-12);
  EXPECT_NEAR(u.log_density_coord(0.9), 0.0, 1e-12);
}

TEST(Prior, BetaDensityIntegratesToOne) {
  // Trapezoidal integration of exp(log_density) over (0,1).
  const Prior prior = Prior::beta(2.0, 5.0);
  const int n = 20000;
  double integral = 0.0;
  for (int i = 1; i < n; ++i) {
    const double x = static_cast<double>(i) / n;
    integral += std::exp(prior.log_density_coord(x)) / n;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(Prior, BetaModeLocation) {
  // Beta(2,5) mode at (a-1)/(a+b-2) = 0.2.
  const Prior prior = Prior::beta(2.0, 5.0);
  const double at_mode = prior.log_density_coord(0.2);
  for (double x : {0.05, 0.4, 0.6, 0.9})
    EXPECT_LT(prior.log_density_coord(x), at_mode);
}

TEST(Prior, LogDensitySumsCoordinates) {
  const Prior prior = Prior::beta(2.0, 3.0);
  const std::vector<double> p{0.2, 0.7};
  EXPECT_NEAR(prior.log_density(p),
              prior.log_density_coord(0.2) + prior.log_density_coord(0.7), 1e-12);
}

TEST(Prior, GradientMatchesFiniteDifferences) {
  const Prior prior = Prior::beta(2.5, 4.0);
  const std::vector<double> p{0.3, 0.8};
  std::vector<double> grad(2, 0.0);
  prior.add_gradient(p, grad);
  const double h = 1e-7;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::vector<double> plus = p, minus = p;
    plus[i] += h;
    minus[i] -= h;
    const double fd = (prior.log_density(plus) - prior.log_density(minus)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-4);
  }
}

TEST(Prior, GradientAccumulates) {
  const Prior prior = Prior::beta(2.0, 2.0);
  std::vector<double> grad{5.0};
  const std::vector<double> p{0.5};
  prior.add_gradient(p, grad);
  // Beta(2,2) gradient at 0.5 is 0, so the existing value is preserved.
  EXPECT_NEAR(grad[0], 5.0, 1e-9);
}

TEST(Prior, SampleMatchesMean) {
  const Prior prior = Prior::beta(3.0, 7.0);
  stats::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(prior.sample_coord(rng));
  EXPECT_NEAR(stats::mean(xs), 0.3, 0.01);
}

TEST(Prior, RejectsBadParameters) {
  EXPECT_THROW(Prior::beta(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Prior::beta(1.0, -2.0), std::invalid_argument);
}

TEST(Prior, BoundaryValuesFinite) {
  const Prior prior = Prior::beta(0.5, 0.5);
  EXPECT_TRUE(std::isfinite(prior.log_density_coord(0.0)));
  EXPECT_TRUE(std::isfinite(prior.log_density_coord(1.0)));
}

}  // namespace
}  // namespace because::core
