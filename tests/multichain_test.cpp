#include <gtest/gtest.h>

#include "core/multichain.hpp"
#include "stats/rhat.hpp"
#include "stats/rng.hpp"

namespace because {
namespace {

// ---------------------------------------------------------------- rhat

TEST(GelmanRubin, AgreeingChainsNearOne) {
  stats::Rng rng(1);
  std::vector<std::vector<double>> chains(4);
  for (auto& chain : chains)
    for (int i = 0; i < 500; ++i) chain.push_back(rng.normal(0.5, 0.1));
  EXPECT_LT(stats::gelman_rubin(chains), 1.05);
}

TEST(GelmanRubin, DivergentChainsLarge) {
  stats::Rng rng(2);
  std::vector<std::vector<double>> chains(2);
  for (int i = 0; i < 500; ++i) {
    chains[0].push_back(rng.normal(0.1, 0.05));  // stuck in one mode
    chains[1].push_back(rng.normal(0.9, 0.05));  // stuck in the other
  }
  EXPECT_GT(stats::gelman_rubin(chains), 2.0);
}

TEST(GelmanRubin, DetectsWithinChainDrift) {
  // Split-R-hat: a single drifting chain disagrees with itself.
  std::vector<std::vector<double>> chains(2);
  for (int i = 0; i < 400; ++i) {
    chains[0].push_back(i / 400.0);
    chains[1].push_back(i / 400.0);
  }
  EXPECT_GT(stats::gelman_rubin(chains), 1.5);
}

TEST(GelmanRubin, ConstantAgreeingChainsAreOne) {
  const std::vector<std::vector<double>> chains{std::vector<double>(100, 0.3),
                                                std::vector<double>(100, 0.3)};
  EXPECT_DOUBLE_EQ(stats::gelman_rubin(chains), 1.0);
}

TEST(GelmanRubin, Validation) {
  EXPECT_THROW(stats::gelman_rubin({{1.0, 2.0, 3.0, 4.0}}), std::invalid_argument);
  EXPECT_THROW(stats::gelman_rubin({{1.0, 2.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(stats::gelman_rubin({{1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- multichain

labeling::PathDataset planted_dataset() {
  labeling::PathDataset d;
  for (int i = 0; i < 10; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({20, 30}, false);
    d.add_path({30}, false);
  }
  return d;
}

TEST(MultiChain, ConvergesOnWellIdentifiedPosterior) {
  const auto data = planted_dataset();
  const core::Likelihood lik(data);
  core::MetropolisConfig config;
  config.samples = 600;
  config.burn_in = 300;
  config.seed = 3;
  const auto result =
      core::run_metropolis_chains(lik, core::Prior::uniform(), config, 4);

  ASSERT_EQ(result.chains.size(), 4u);
  ASSERT_EQ(result.rhat.size(), data.as_count());
  EXPECT_TRUE(result.converged(1.2)) << "max rhat " << result.max_rhat();
  EXPECT_EQ(result.pooled.size(), 4u * 600u);
  EXPECT_GT(result.pooled.mean(*data.index_of(10)), 0.8);
}

TEST(MultiChain, SeedsDifferAcrossChains) {
  const auto data = planted_dataset();
  const core::Likelihood lik(data);
  core::MetropolisConfig config;
  config.samples = 50;
  config.burn_in = 20;
  config.seed = 4;
  const auto result =
      core::run_metropolis_chains(lik, core::Prior::uniform(), config, 2);
  bool any_diff = false;
  for (std::size_t t = 0; t < result.chains[0].size(); ++t)
    if (result.chains[0].sample(t)[0] != result.chains[1].sample(t)[0])
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(MultiChain, DeterministicAcrossRuns) {
  const auto data = planted_dataset();
  const core::Likelihood lik(data);
  core::MetropolisConfig config;
  config.samples = 60;
  config.burn_in = 30;
  config.seed = 5;
  const auto a = core::run_metropolis_chains(lik, core::Prior::uniform(), config, 3);
  const auto b = core::run_metropolis_chains(lik, core::Prior::uniform(), config, 3);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t t = 0; t < a.chains[c].size(); t += 11)
      for (std::size_t i = 0; i < a.chains[c].dim(); ++i)
        EXPECT_DOUBLE_EQ(a.chains[c].sample(t)[i], b.chains[c].sample(t)[i]);
  ASSERT_EQ(a.rhat.size(), b.rhat.size());
  for (std::size_t i = 0; i < a.rhat.size(); ++i)
    EXPECT_DOUBLE_EQ(a.rhat[i], b.rhat[i]);
}

TEST(MultiChain, RejectsSingleChain) {
  const auto data = planted_dataset();
  const core::Likelihood lik(data);
  EXPECT_THROW(core::run_metropolis_chains(lik, core::Prior::uniform(),
                                           core::MetropolisConfig{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace because
