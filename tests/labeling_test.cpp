#include <gtest/gtest.h>

#include "beacon/schedule.hpp"
#include "labeling/path_key.hpp"
#include "labeling/signature.hpp"

namespace because::labeling {
namespace {

const bgp::Prefix kPrefix{1, 24};

// ---------------------------------------------------------------- path_key

TEST(PathKey, CleanStripsPrepending) {
  EXPECT_EQ(clean_path({1, 1, 2, 3}), (topology::AsPath{1, 2, 3}));
}

TEST(PathKey, CleanDropsLoopedPaths) {
  EXPECT_TRUE(clean_path({1, 2, 1}).empty());
}

TEST(PathKey, ToString) {
  EXPECT_EQ(path_to_string({701, 2497}), "701 2497");
  EXPECT_EQ(path_to_string({}), "");
}

TEST(PathKey, HashDistinguishesPaths) {
  PathHash h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

// ---------------------------------------------------------------- signature

/// Fixture building a beacon schedule and recording synthetic VP streams.
struct SignatureFixture {
  beacon::BeaconSchedule schedule;
  collector::UpdateStore store;
  collector::VpId vp;
  topology::AsPath path{100, 50, 10};

  SignatureFixture() {
    schedule.update_interval = sim::minutes(1);
    schedule.burst_length = sim::minutes(20);
    schedule.break_length = sim::hours(1);
    schedule.pairs = 3;
    schedule.warmup = sim::minutes(5);
    vp = store.register_vp(100, collector::Project::kRipeRis, 0);
  }

  void add_announcement(sim::Time at, const topology::AsPath& p = {}) {
    bgp::Update u;
    u.type = bgp::UpdateType::kAnnouncement;
    u.prefix = kPrefix;
    u.path = store.paths().intern(p.empty() ? path : p);
    u.beacon_timestamp = at;
    store.record(vp, at, u);
  }

  void add_withdrawal(sim::Time at) {
    bgp::Update u;
    u.type = bgp::UpdateType::kWithdrawal;
    u.prefix = kPrefix;
    store.record(vp, at, u);
  }

  /// Replay the whole burst at the VP (no damping): every beacon event
  /// arrives `delay` later.
  void replay_clean(sim::Duration delay = sim::seconds(30)) {
    for (const beacon::BeaconEvent& e : beacon::expand(schedule)) {
      if (e.type == bgp::UpdateType::kAnnouncement)
        add_announcement(e.when + delay);
      else
        add_withdrawal(e.when + delay);
    }
  }

  /// Replay with damping: bursts go quiet after `quiet_after` into each
  /// burst and a re-advertisement arrives `rdelta` after the burst's last
  /// event.
  void replay_damped(sim::Duration quiet_after, sim::Duration rdelta) {
    const auto bursts = beacon::burst_windows(schedule);
    const auto events = beacon::expand(schedule);
    for (const beacon::BeaconEvent& e : events) {
      bool suppressed = false;
      for (const beacon::Window& burst : bursts)
        if (e.when >= burst.begin + quiet_after && e.when < burst.end)
          suppressed = true;
      if (suppressed) continue;
      if (e.type == bgp::UpdateType::kAnnouncement)
        add_announcement(e.when + sim::seconds(30));
      else
        add_withdrawal(e.when + sim::seconds(30));
    }
    // Re-advertisements in each break.
    for (const beacon::Window& burst : bursts) {
      sim::Time last = burst.begin;
      for (const beacon::BeaconEvent& e : events)
        if (e.when >= burst.begin && e.when < burst.end)
          last = std::max(last, e.when);
      add_announcement(last + rdelta);
    }
  }
};

TEST(Signature, CleanPathLabeledNonRfd) {
  SignatureFixture f;
  f.replay_clean();
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_FALSE(labels[0].rfd);
  EXPECT_EQ(labels[0].path, f.path);
  EXPECT_GT(labels[0].relevant_pairs, 0u);
  EXPECT_EQ(labels[0].matching_pairs, 0u);
}

TEST(Signature, DampedPathLabeledRfd) {
  SignatureFixture f;
  f.replay_damped(sim::minutes(6), sim::minutes(25));
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_TRUE(labels[0].rfd);
  EXPECT_EQ(labels[0].matching_pairs, labels[0].relevant_pairs);
  EXPECT_NEAR(labels[0].mean_rdelta_minutes, 25.0, 0.5);
  EXPECT_EQ(labels[0].rdeltas_minutes.size(), labels[0].matching_pairs);
}

TEST(Signature, ShortRdeltaIsNotRfd) {
  // Re-advertisements within the 5 min propagation window do not count.
  SignatureFixture f;
  f.replay_damped(sim::minutes(6), sim::minutes(3));
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_FALSE(labels[0].rfd);
}

TEST(Signature, NinetyPercentRuleToleratesOnePairMiss) {
  SignatureFixture f;
  f.schedule.pairs = 10;
  const auto bursts = beacon::burst_windows(f.schedule);
  const auto events = beacon::expand(f.schedule);
  f.add_announcement(0);  // initial steady state before the first burst
  // All pairs match except the first (session-reset style failure).
  for (std::size_t k = 0; k < bursts.size(); ++k) {
    sim::Time last = bursts[k].begin;
    for (const beacon::BeaconEvent& e : events)
      if (e.when >= bursts[k].begin && e.when < bursts[k].end)
        last = std::max(last, e.when);
    if (k != 0) f.add_announcement(last + sim::minutes(20));
  }
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].relevant_pairs, 10u);
  EXPECT_EQ(labels[0].matching_pairs, 9u);
  EXPECT_TRUE(labels[0].rfd);  // 9/10 = 90% >= threshold
}

TEST(Signature, BelowNinetyPercentIsNotRfd) {
  SignatureFixture f;
  f.schedule.pairs = 10;
  const auto bursts = beacon::burst_windows(f.schedule);
  const auto events = beacon::expand(f.schedule);
  f.add_announcement(0);
  for (std::size_t k = 0; k < bursts.size(); ++k) {
    sim::Time last = bursts[k].begin;
    for (const beacon::BeaconEvent& e : events)
      if (e.when >= bursts[k].begin && e.when < bursts[k].end)
        last = std::max(last, e.when);
    if (k >= 2) f.add_announcement(last + sim::minutes(20));  // 8/10 match
  }
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_FALSE(labels[0].rfd);
}

TEST(Signature, SteadyStatePathIsTheUnitUnderTest) {
  // A path announced only *inside* a burst (transient hunting path) gets no
  // label; the steady path entering the burst does.
  SignatureFixture f;
  const auto bursts = beacon::burst_windows(f.schedule);
  f.add_announcement(0);  // steady path {100,50,10}
  f.add_announcement(bursts[0].begin + sim::minutes(2), {100, 60, 10});
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  // Burst 0 tests the steady path; bursts 1,2 test {100,60,10}, which
  // became current mid-burst-0 and stayed current.
  bool steady_found = false;
  for (const LabeledPath& l : labels)
    if (l.path == f.path) steady_found = true;
  EXPECT_TRUE(steady_found);

  // observed_paths() still surfaces the transient alternative for M2.
  const auto observed = observed_paths(f.store, kPrefix);
  ASSERT_EQ(observed.size(), 2u);
}

TEST(Signature, DistinctPathsLabeledIndependently) {
  // The steady path alternates across the campaign: clean path before
  // burst 0, damped alternative from burst 1 on (it re-advertises in every
  // break and is thus current at the following burst start).
  SignatureFixture f;
  f.replay_clean();  // path {100,50,10} clean, flaps every burst
  const topology::AsPath alt{100, 60, 10};
  const auto bursts = beacon::burst_windows(f.schedule);
  const auto events = beacon::expand(f.schedule);
  for (const beacon::Window& burst : bursts) {
    sim::Time last = burst.begin;
    for (const beacon::BeaconEvent& e : events)
      if (e.when >= burst.begin && e.when < burst.end)
        last = std::max(last, e.when);
    f.add_announcement(last + sim::minutes(22), alt);
  }
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 2u);
  bool clean_found = false, damped_found = false;
  for (const LabeledPath& l : labels) {
    if (l.path == f.path) {
      EXPECT_FALSE(l.rfd);  // burst 0: steady, no re-adv
      clean_found = true;
    }
    if (l.path == alt) {
      EXPECT_TRUE(l.rfd);  // bursts 1..: steady with matching re-adv
      damped_found = true;
    }
  }
  EXPECT_TRUE(clean_found);
  EXPECT_TRUE(damped_found);
}

TEST(Signature, PrependedPathsCollapse) {
  SignatureFixture f;
  f.add_announcement(sim::minutes(1), {100, 50, 50, 10});  // before burst 0
  const auto bursts = beacon::burst_windows(f.schedule);
  f.add_announcement(bursts[0].begin + sim::seconds(65), {100, 50, 10});
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);  // same cleaned path
  EXPECT_EQ(labels[0].path, (topology::AsPath{100, 50, 10}));
  EXPECT_GE(labels[0].relevant_pairs, 1u);
}

TEST(Signature, EmptyStoreYieldsNoLabels) {
  SignatureFixture f;
  EXPECT_TRUE(label_paths(f.store, kPrefix, f.schedule).empty());
  EXPECT_TRUE(observed_paths(f.store, kPrefix).empty());
}

TEST(Signature, QuietSteadyPathLabeledCleanAcrossPairs) {
  // A route announced once before the bursts and never updated again stays
  // the VP's best path: it is tested in every pair and labeled non-RFD.
  SignatureFixture f;
  f.add_announcement(sim::minutes(1));  // during warmup, before burst 0
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].relevant_pairs, f.schedule.pairs);
  EXPECT_FALSE(labels[0].rfd);
}

class RdeltaSweep : public ::testing::TestWithParam<int> {};

TEST_P(RdeltaSweep, RdeltaMeasuredAccurately) {
  SignatureFixture f;
  const int rdelta_min = GetParam();
  f.replay_damped(sim::minutes(6), sim::minutes(rdelta_min));
  const auto labels = label_paths(f.store, kPrefix, f.schedule);
  ASSERT_EQ(labels.size(), 1u);
  ASSERT_TRUE(labels[0].rfd);
  EXPECT_NEAR(labels[0].mean_rdelta_minutes, rdelta_min, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Rdeltas, RdeltaSweep, ::testing::Values(10, 30, 45, 58));

}  // namespace
}  // namespace because::labeling
