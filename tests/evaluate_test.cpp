#include <gtest/gtest.h>

#include "core/evaluate.hpp"

namespace because::core {
namespace {

labeling::PathDataset four_as_dataset() {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({30, 40}, false);
  return d;
}

TEST(Evaluate, PerfectPrediction) {
  const auto d = four_as_dataset();
  std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  cats[*d.index_of(10)] = Category::kHighlyLikelyDamping;
  const auto eval = evaluate(d, cats, {10});
  EXPECT_DOUBLE_EQ(eval.matrix.precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.matrix.recall(), 1.0);
  EXPECT_TRUE(eval.false_positives.empty());
  EXPECT_TRUE(eval.false_negatives.empty());
}

TEST(Evaluate, FalsePositiveLowersPrecision) {
  const auto d = four_as_dataset();
  std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  cats[*d.index_of(10)] = Category::kLikelyDamping;
  cats[*d.index_of(20)] = Category::kLikelyDamping;  // wrong
  const auto eval = evaluate(d, cats, {10});
  EXPECT_DOUBLE_EQ(eval.matrix.precision(), 0.5);
  ASSERT_EQ(eval.false_positives.size(), 1u);
  EXPECT_EQ(eval.false_positives[0], 20u);
}

TEST(Evaluate, FalseNegativeLowersRecall) {
  const auto d = four_as_dataset();
  const std::vector<Category> cats(d.as_count(), Category::kUncertain);
  const auto eval = evaluate(d, cats, {10});
  EXPECT_DOUBLE_EQ(eval.matrix.recall(), 0.0);
  ASSERT_EQ(eval.false_negatives.size(), 1u);
  EXPECT_EQ(eval.false_negatives[0], 10u);
  // No positive predictions: vacuous precision convention = 1.0.
  EXPECT_DOUBLE_EQ(eval.matrix.precision(), 1.0);
}

TEST(Evaluate, ScopeRestrictsScoring) {
  const auto d = four_as_dataset();
  std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  cats[*d.index_of(20)] = Category::kLikelyDamping;  // FP, but out of scope
  const auto eval = evaluate(d, cats, {10}, {10, 30});
  EXPECT_EQ(eval.matrix.total(), 2u);
  EXPECT_TRUE(eval.false_positives.empty());
}

TEST(Evaluate, BoolVariant) {
  const auto d = four_as_dataset();
  std::vector<bool> predicted(d.as_count(), false);
  predicted[*d.index_of(10)] = true;
  const auto eval = evaluate_bool(d, predicted, {10});
  EXPECT_DOUBLE_EQ(eval.matrix.precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.matrix.recall(), 1.0);
}

TEST(Evaluate, SizeMismatchThrows) {
  const auto d = four_as_dataset();
  EXPECT_THROW(evaluate(d, std::vector<Category>(1, Category::kUncertain), {}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_bool(d, std::vector<bool>(1, false), {}),
               std::invalid_argument);
}

TEST(Evaluate, TruthOutsideDatasetNotCounted) {
  // A damper that was never measured cannot be a false negative here; the
  // paper handles such ASs by removing them from the ground-truth set.
  const auto d = four_as_dataset();
  const std::vector<Category> cats(d.as_count(), Category::kLikelyNot);
  const auto eval = evaluate(d, cats, {999});
  EXPECT_EQ(eval.matrix.false_negatives, 0u);
  EXPECT_EQ(eval.matrix.total(), d.as_count());
}

}  // namespace
}  // namespace because::core
