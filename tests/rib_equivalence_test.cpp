// Differential tests for the two RIB storage backends.
//
// kFlat (slab + bitmaps + enumeration mirrors) must be observably identical
// to kMap (the original nested unordered_map code): same query results — and
// for the enumeration calls, the same *order* (the contract documented in
// bgp/rib.hpp) — over long randomized operation sequences. The strong form,
// bit-identical whole-campaign traces per backend at 1k/5k ASes, lives in
// sim_scale_test.cpp (label: slow); the golden-trace digest runs both
// backends in sim_golden_trace_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "bgp/rib.hpp"
#include "stats/rng.hpp"

namespace because {
namespace {

using bgp::AdjRibIn;
using bgp::AdjRibInEntry;
using bgp::LocRib;
using bgp::Prefix;
using bgp::RibBackend;
using bgp::RibCandidate;
using bgp::Route;

Route make_route(const Prefix& prefix, sim::Time ts) {
  return Route{prefix, topology::kEmptyPath, ts};
}

std::vector<Prefix> sorted(std::vector<Prefix> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Sorted (neighbor, prefix, timestamp) view of usable() output, so the
/// comparison is order-independent (usable() order feeds a full scan in the
/// decision process, not the trace).
std::vector<std::tuple<topology::AsId, Prefix, sim::Time>> usable_set(
    const AdjRibIn& rib, const Prefix& prefix) {
  std::vector<RibCandidate> scratch;
  rib.usable(prefix, scratch);
  std::vector<std::tuple<topology::AsId, Prefix, sim::Time>> out;
  out.reserve(scratch.size());
  for (const RibCandidate& c : scratch)
    out.emplace_back(c.neighbor, c.route->prefix, c.route->beacon_timestamp);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RibEquivalence, AdjRibInBackendsAgreeOnRandomOps) {
  AdjRibIn flat(RibBackend::kFlat);
  AdjRibIn map(RibBackend::kMap);
  const std::vector<topology::AsId> neighbors = {3, 7, 11, 42};
  for (topology::AsId n : neighbors) {
    flat.add_neighbor(n);
    map.add_neighbor(n);
  }
  const std::vector<Prefix> prefixes = {
      {1, 24}, {2, 24}, {2, 25}, {9, 16}, {0, 24}};

  stats::Rng rng(31);
  for (int step = 0; step < 2000; ++step) {
    const auto n = neighbors[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(neighbors.size() - 1)))];
    const auto p = prefixes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(prefixes.size() - 1)))];
    switch (rng.uniform_int(0, 4)) {
      case 0: {
        const bool suppressed = rng.bernoulli(0.2);
        flat.install(n, make_route(p, step), suppressed);
        map.install(n, make_route(p, step), suppressed);
        break;
      }
      case 1:
        EXPECT_EQ(flat.withdraw(n, p), map.withdraw(n, p));
        break;
      case 2: {
        const bool value = rng.bernoulli(0.5);
        flat.set_suppressed(n, p, value);
        map.set_suppressed(n, p, value);
        break;
      }
      case 3:
        flat.note_seen(n, p);
        map.note_seen(n, p);
        break;
      default: {
        const AdjRibInEntry* fe = flat.find(n, p);
        const AdjRibInEntry* me = map.find(n, p);
        ASSERT_EQ(fe == nullptr, me == nullptr);
        if (fe != nullptr) {
          EXPECT_EQ(fe->suppressed, me->suppressed);
          EXPECT_EQ(fe->route.beacon_timestamp, me->route.beacon_timestamp);
        }
        break;
      }
    }
    EXPECT_EQ(flat.route_count(), map.route_count());
    EXPECT_EQ(flat.seen(n, p), map.seen(n, p));
    EXPECT_EQ(usable_set(flat, p), usable_set(map, p));
  }
  std::vector<Prefix> flat_prefixes;
  std::vector<Prefix> map_prefixes;
  for (topology::AsId n : neighbors) {
    flat.prefixes_from(n, flat_prefixes);
    map.prefixes_from(n, map_prefixes);
    // Same set; and the mirror contract promises the same *order* too.
    EXPECT_EQ(sorted(flat_prefixes), sorted(map_prefixes));
    EXPECT_EQ(flat_prefixes, map_prefixes);
  }
}

TEST(RibEquivalence, LocRibBackendsAgreeOnRandomOps) {
  LocRib flat(RibBackend::kFlat);
  LocRib map(RibBackend::kMap);
  const std::vector<Prefix> prefixes = {{1, 24}, {2, 24}, {5, 25}, {0, 24}};
  stats::Rng rng(33);
  for (int step = 0; step < 1000; ++step) {
    const auto p = prefixes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(prefixes.size() - 1)))];
    if (rng.bernoulli(0.6)) {
      const bgp::Selected sel{
          std::optional<topology::AsId>{static_cast<topology::AsId>(step % 5)},
          make_route(p, step)};
      flat.select(p, sel);
      map.select(p, sel);
    } else {
      EXPECT_EQ(flat.remove(p), map.remove(p));
    }
    const bgp::Selected* fs = flat.find(p);
    const bgp::Selected* ms = map.find(p);
    ASSERT_EQ(fs == nullptr, ms == nullptr);
    if (fs != nullptr) {
      EXPECT_EQ(fs->neighbor, ms->neighbor);
      EXPECT_EQ(fs->route.beacon_timestamp, ms->route.beacon_timestamp);
    }
    EXPECT_EQ(flat.size(), map.size());
  }
  std::vector<Prefix> flat_prefixes;
  std::vector<Prefix> map_prefixes;
  flat.prefixes(flat_prefixes);
  map.prefixes(map_prefixes);
  EXPECT_EQ(flat_prefixes, map_prefixes);  // order contract, not just set
}

}  // namespace
}  // namespace because
