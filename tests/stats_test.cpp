#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/classification.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/ess.hpp"
#include "stats/hdpi.hpp"
#include "stats/histogram.hpp"
#include "stats/linreg.hpp"
#include "stats/rng.hpp"

namespace because::stats {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.uniform() != b.uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
  EXPECT_NEAR(stddev(xs), 3.0, 0.1);
}

TEST(Rng, BetaMean) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.beta(2.0, 6.0));
  EXPECT_NEAR(mean(xs), 0.25, 0.01);  // alpha/(alpha+beta)
  for (double x : xs) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, BetaRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.beta(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.beta(1.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.exponential(4.0));
  EXPECT_NEAR(mean(xs), 4.0, 0.15);
}

TEST(Rng, IndexBounds) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.index(5), 5u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto picks = rng.sample_without_replacement(10, 10);
  std::vector<bool> seen(10, false);
  for (std::size_t p : picks) {
    EXPECT_LT(p, 10u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(7);
  b.fork();
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());  // parent streams stay in sync
  (void)child;
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7};
  auto copy = xs;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, xs);
}

// ---------------------------------------------------------------- descriptive

TEST(Descriptive, Mean) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

TEST(Descriptive, MeanRejectsEmpty) {
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, VarianceUnbiased) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
}

TEST(Descriptive, VarianceNeedsTwo) {
  EXPECT_THROW(variance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 3.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Descriptive, QuantileRejectsOutOfRange) {
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

TEST(Descriptive, CorrelationPerfect) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(xs, zs), -1.0, 1e-12);
}

TEST(Descriptive, CorrelationRejectsConstant) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(correlation(xs, ys), std::invalid_argument);
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, NormalizedSumsToOne) {
  Histogram h(0.0, 1.0, 5);
  for (int i = 0; i < 20; ++i) h.add(0.1 * (i % 10));
  double sum = 0.0;
  for (double x : h.normalized()) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, EmptyNormalizedIsZeros) {
  Histogram h(0.0, 1.0, 3);
  for (double x : h.normalized()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- ecdf

TEST(Ecdf, BasicFractions) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(e.at(10.0), 1.0);
}

TEST(Ecdf, QuantileRoundTrip) {
  Ecdf e({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 30.0);
}

TEST(Ecdf, CurveIsMonotone) {
  Ecdf e({1.0, 5.0, 2.0, 8.0, 3.0});
  const auto curve = e.curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
    EXPECT_LE(curve[i - 1].first, curve[i].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, RejectsEmpty) {
  EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

// ---------------------------------------------------------------- hdpi

TEST(Hdpi, FullMassIsRange) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const Interval iv = hdpi(xs, 1.0);
  EXPECT_DOUBLE_EQ(iv.lo, 1.0);
  EXPECT_DOUBLE_EQ(iv.hi, 3.0);
}

TEST(Hdpi, FindsDenseCluster) {
  // 90 points near 0.5, 10 outliers near 0 and 1.
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(0.5 + 0.001 * i);
  for (int i = 0; i < 5; ++i) xs.push_back(0.0 + 0.01 * i);
  for (int i = 0; i < 5; ++i) xs.push_back(1.0 - 0.01 * i);
  const Interval iv = hdpi(xs, 0.9);
  EXPECT_GE(iv.lo, 0.4);
  EXPECT_LE(iv.hi, 0.6);
}

TEST(Hdpi, WidthShrinksWithConcentration) {
  Rng rng(37);
  std::vector<double> wide, narrow;
  for (int i = 0; i < 2000; ++i) {
    wide.push_back(rng.uniform());
    narrow.push_back(0.5 + 0.01 * rng.normal());
  }
  EXPECT_LT(hdpi(narrow).width(), hdpi(wide).width());
}

TEST(Hdpi, ContainsRequestedMass) {
  Rng rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  const Interval iv = hdpi(xs, 0.95);
  std::size_t inside = 0;
  for (double x : xs)
    if (iv.contains(x)) ++inside;
  EXPECT_GE(static_cast<double>(inside) / static_cast<double>(xs.size()),
            0.95 - 1e-9);
}

TEST(Hdpi, RejectsBadInput) {
  EXPECT_THROW(hdpi(std::vector<double>{}, 0.9), std::invalid_argument);
  EXPECT_THROW(hdpi(std::vector<double>{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(hdpi(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

TEST(Hdpi, SinglePointDegenerate) {
  const Interval iv = hdpi(std::vector<double>{0.7}, 0.95);
  EXPECT_DOUBLE_EQ(iv.lo, 0.7);
  EXPECT_DOUBLE_EQ(iv.hi, 0.7);
  EXPECT_DOUBLE_EQ(iv.width(), 0.0);
}

// ---------------------------------------------------------------- linreg

TEST(LinReg, ExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinReg, IndexedFit) {
  const std::vector<double> ys{10.0, 8.0, 6.0, 4.0};
  const LinearFit fit = linear_fit_indexed(ys);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.at(0.0), 10.0, 1e-12);
}

TEST(LinReg, FlatLineZeroSlope) {
  const std::vector<double> ys{5.0, 5.0, 5.0};
  const LinearFit fit = linear_fit_indexed(ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 0.0, 1e-12);
}

TEST(LinReg, RejectsDegenerate) {
  EXPECT_THROW(linear_fit(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(linear_fit(std::vector<double>{1.0, 1.0},
                          std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(linear_fit(std::vector<double>{1.0, 2.0},
                          std::vector<double>{1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- classification

TEST(Classification, CountsCells) {
  ConfusionMatrix m;
  m.add(true, true);
  m.add(true, false);
  m.add(false, true);
  m.add(false, false);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
  EXPECT_EQ(m.total(), 4u);
  EXPECT_DOUBLE_EQ(m.precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.recall(), 0.5);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(m.f1(), 0.5);
}

TEST(Classification, PerfectScores) {
  ConfusionMatrix m;
  m.add(true, true);
  m.add(false, false);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
}

TEST(Classification, VacuousConventions) {
  ConfusionMatrix m;  // empty
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(Classification, ZeroF1WhenNothingRight) {
  ConfusionMatrix m;
  m.add(true, false);
  m.add(false, true);
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
}

// ---------------------------------------------------------------- ess

TEST(Ess, IndependentSamplesNearN) {
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal());
  EXPECT_GT(effective_sample_size(xs), 2000.0);
}

TEST(Ess, CorrelatedChainMuchSmaller) {
  Rng rng(47);
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 4000; ++i) {
    x = 0.99 * x + 0.1 * rng.normal();  // AR(1), strongly autocorrelated
    xs.push_back(x);
  }
  EXPECT_LT(effective_sample_size(xs), 500.0);
}

TEST(Ess, AutocorrelationLagZeroIsOne) {
  Rng rng(53);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Ess, ConstantChainIsZeroAutocorrelation) {
  const std::vector<double> xs(50, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

// ------------------------------------------------ property sweeps (TEST_P)

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, QuantileWithinRange) {
  Rng rng(61);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(-3.0, 9.0));
  const double q = quantile(xs, GetParam());
  EXPECT_GE(q, min(xs));
  EXPECT_LE(q, max(xs));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

class HdpiMassSweep : public ::testing::TestWithParam<double> {};

TEST_P(HdpiMassSweep, CoverageAtLeastMass) {
  Rng rng(67);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.beta(2.0, 5.0));
  const double mass = GetParam();
  const Interval iv = hdpi(xs, mass);
  std::size_t inside = 0;
  for (double x : xs)
    if (iv.contains(x)) ++inside;
  EXPECT_GE(static_cast<double>(inside) / static_cast<double>(xs.size()),
            mass - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Masses, HdpiMassSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99));

}  // namespace
}  // namespace because::stats
