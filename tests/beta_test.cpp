#include <gtest/gtest.h>

#include <cmath>

#include "stats/beta.hpp"

namespace because::stats {
namespace {

TEST(Beta, LogBetaKnownValues) {
  // B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
  EXPECT_NEAR(log_beta(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(std::exp(log_beta(2, 3)), 1.0 / 12.0, 1e-12);
  EXPECT_NEAR(std::exp(log_beta(0.5, 0.5)), M_PI, 1e-9);
}

TEST(Beta, PdfUniform) {
  for (double x : {0.1, 0.5, 0.9}) EXPECT_NEAR(beta_pdf(x, 1, 1), 1.0, 1e-12);
}

TEST(Beta, PdfIntegratesToOne) {
  const int n = 20000;
  double integral = 0.0;
  for (int i = 0; i < n; ++i)
    integral += beta_pdf((i + 0.5) / n, 2.5, 4.0) / n;
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(Beta, CdfUniformIsIdentity) {
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0})
    EXPECT_NEAR(beta_cdf(x, 1, 1), x, 1e-12);
}

TEST(Beta, CdfKnownValues) {
  // Beta(2,2): CDF(x) = 3x^2 - 2x^3.
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(beta_cdf(x, 2, 2), 3 * x * x - 2 * x * x * x, 1e-10);
  }
  // Beta(1,b): CDF(x) = 1 - (1-x)^b.
  EXPECT_NEAR(beta_cdf(0.3, 1, 5), 1.0 - std::pow(0.7, 5), 1e-10);
}

TEST(Beta, CdfMatchesNumericalIntegral) {
  const double a = 3.7, b = 1.4;
  const int n = 200000;
  double integral = 0.0;
  int checkpoint = 0;
  const double checkpoints[] = {0.2, 0.5, 0.9};
  for (int i = 0; i < n && checkpoint < 3; ++i) {
    const double x = (i + 0.5) / n;
    integral += beta_pdf(x, a, b) / n;
    if (x >= checkpoints[checkpoint]) {
      EXPECT_NEAR(beta_cdf(checkpoints[checkpoint], a, b), integral, 1e-3);
      ++checkpoint;
    }
  }
}

TEST(Beta, CdfMonotone) {
  double prev = 0.0;
  for (int i = 1; i <= 50; ++i) {
    const double x = i / 50.0;
    const double c = beta_cdf(x, 5.0, 2.0);
    EXPECT_GE(c, prev - 1e-15);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(Beta, SymmetryRelation) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.15, 0.4, 0.77}) {
    EXPECT_NEAR(beta_cdf(x, 2.3, 6.1), 1.0 - beta_cdf(1.0 - x, 6.1, 2.3), 1e-10);
  }
}

TEST(Beta, QuantileRoundTrip) {
  for (double q : {0.025, 0.25, 0.5, 0.75, 0.975}) {
    const double x = beta_quantile(q, 4.0, 9.0);
    EXPECT_NEAR(beta_cdf(x, 4.0, 9.0), q, 1e-9);
  }
  EXPECT_DOUBLE_EQ(beta_quantile(0.0, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ(beta_quantile(1.0, 2, 2), 1.0);
}

TEST(Beta, Validation) {
  EXPECT_THROW(log_beta(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(beta_cdf(0.5, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(beta_quantile(1.5, 1.0, 1.0), std::invalid_argument);
}

TEST(Beta, EdgeCases) {
  EXPECT_DOUBLE_EQ(beta_cdf(-0.5, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ(beta_cdf(1.5, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(beta_pdf(-0.1, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ(beta_pdf(1.1, 2, 2), 0.0);
}

}  // namespace
}  // namespace because::stats
