// Analytic cross-checks: a single-AS tomography dataset with k
// property-showing paths out of n has the exact conjugate posterior
// Beta(alpha + k, beta + n - k). Every sampler's marginal must match it.
#include <gtest/gtest.h>

#include <tuple>

#include "core/gibbs.hpp"
#include "core/hmc.hpp"
#include "core/metropolis.hpp"
#include "stats/beta.hpp"
#include "stats/descriptive.hpp"
#include "stats/hdpi.hpp"

namespace because::core {
namespace {

labeling::PathDataset single_as(int shows, int total) {
  labeling::PathDataset d;
  for (int i = 0; i < total; ++i) d.add_path({42}, i < shows);
  return d;
}

/// (shows, total, prior_alpha, prior_beta)
using Case = std::tuple<int, int, double, double>;

class ConjugacySweep : public ::testing::TestWithParam<Case> {
 protected:
  void check_chain(const Chain& chain, const char* name) {
    const auto [k, n, alpha, beta] = GetParam();
    const double post_a = alpha + k;
    const double post_b = beta + (n - k);

    const auto samples = chain.marginal(0);
    const double analytic_mean = post_a / (post_a + post_b);
    EXPECT_NEAR(stats::mean(samples), analytic_mean, 0.03)
        << name << " mean, posterior Beta(" << post_a << "," << post_b << ")";

    // Compare the empirical CDF to the analytic CDF at a few quantiles.
    for (double q : {0.25, 0.5, 0.75}) {
      const double x = stats::beta_quantile(q, post_a, post_b);
      std::size_t below = 0;
      for (double s : samples)
        if (s <= x) ++below;
      EXPECT_NEAR(static_cast<double>(below) / static_cast<double>(samples.size()),
                  q, 0.06)
          << name << " CDF at q=" << q;
    }
  }
};

TEST_P(ConjugacySweep, MetropolisMatchesAnalyticPosterior) {
  const auto [k, n, alpha, beta] = GetParam();
  const auto data = single_as(k, n);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 4000;
  config.burn_in = 1000;
  config.seed = 101;
  check_chain(run_metropolis(lik, Prior::beta(alpha, beta), config), "MH");
}

TEST_P(ConjugacySweep, HmcMatchesAnalyticPosterior) {
  const auto [k, n, alpha, beta] = GetParam();
  const auto data = single_as(k, n);
  const Likelihood lik(data);
  HmcConfig config;
  config.samples = 1500;
  config.burn_in = 300;
  config.seed = 102;
  check_chain(run_hmc(lik, Prior::beta(alpha, beta), config), "HMC");
}

TEST_P(ConjugacySweep, GibbsMatchesAnalyticPosterior) {
  const auto [k, n, alpha, beta] = GetParam();
  const auto data = single_as(k, n);
  const Likelihood lik(data);
  GibbsConfig config;
  config.samples = 2500;
  config.burn_in = 300;
  config.grid_points = 256;
  config.seed = 103;
  check_chain(run_gibbs(lik, Prior::beta(alpha, beta), config), "Gibbs");
}

INSTANTIATE_TEST_SUITE_P(
    Posteriors, ConjugacySweep,
    ::testing::Values(Case{0, 10, 1.0, 1.0},   // strong clean evidence
                      Case{10, 10, 1.0, 1.0},  // strong damping evidence
                      Case{3, 10, 1.0, 1.0},   // partial damping
                      Case{5, 20, 2.0, 2.0},   // informative prior
                      Case{1, 3, 1.0, 3.0},    // sparse prior, little data
                      Case{7, 9, 0.5, 0.5}));  // Jeffreys prior

TEST(Conjugacy, HdpiCoversAnalyticInterval) {
  // The sampled 95% HDPI must roughly bracket the analytic central mass.
  const auto data = single_as(6, 20);
  const Likelihood lik(data);
  MetropolisConfig config;
  config.samples = 4000;
  config.burn_in = 1000;
  config.seed = 104;
  const Chain chain = run_metropolis(lik, Prior::uniform(), config);
  const auto interval = stats::hdpi(chain.marginal(0), 0.95);
  // Posterior is Beta(7, 15): compare against the exact central interval.
  const double lo = stats::beta_quantile(0.025, 7, 15);
  const double hi = stats::beta_quantile(0.975, 7, 15);
  EXPECT_NEAR(interval.lo, lo, 0.06);
  EXPECT_NEAR(interval.hi, hi, 0.06);
}

}  // namespace
}  // namespace because::core
