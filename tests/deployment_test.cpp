#include <gtest/gtest.h>

#include "experiment/deployment.hpp"
#include "topology/generator.hpp"

namespace because::experiment {
namespace {

topology::AsGraph make_graph(std::uint64_t seed = 1) {
  topology::GeneratorConfig config;
  config.tier1_count = 4;
  config.transit_count = 30;
  config.stub_count = 80;
  stats::Rng rng(seed);
  return topology::generate(config, rng);
}

TEST(Variants, StandardSetIsValid) {
  const auto variants = standard_variants();
  ASSERT_EQ(variants.size(), 5u);
  for (const RfdVariant& v : variants) EXPECT_NO_THROW(v.params.validate());
  // Exactly two vendor-default presets (cisco-60, juniper-60).
  std::size_t vendor = 0;
  for (const RfdVariant& v : variants)
    if (v.vendor_default) ++vendor;
  EXPECT_EQ(vendor, 2u);
}

TEST(Variants, TriggeringIntervalsMatchPaperNarrative) {
  // "A router with deprecated default values would start damping at the
  // 5 minutes update interval" and "an update interval of 2 minutes would
  // trigger RFD with the recommended parameters" (a 3 min interval is the
  // analytic boundary, so we accept 2-5 minutes for rfc7454).
  const auto variants = standard_variants();
  for (const RfdVariant& v : variants) {
    const sim::Duration trigger = v.max_triggering_interval();
    if (v.name == "cisco-60" || v.name == "juniper-60" || v.name == "cisco-30") {
      EXPECT_GE(trigger, sim::minutes(5)) << v.name;
      EXPECT_LT(trigger, sim::minutes(10)) << v.name;
    } else if (v.name == "rfc7454-60") {
      EXPECT_GE(trigger, sim::minutes(2)) << v.name;
      EXPECT_LE(trigger, sim::minutes(5)) << v.name;
    } else if (v.name == "cisco-10") {
      EXPECT_GE(trigger, sim::minutes(1)) << v.name;
      EXPECT_LE(trigger, sim::minutes(3)) << v.name;
    }
  }
}

TEST(Deployment, FractionApproximatelyHonored) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.1;
  stats::Rng rng(2);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  const double fraction =
      static_cast<double>(plan.deployments.size()) /
      static_cast<double>(graph.as_count());
  EXPECT_NEAR(fraction, 0.1, 0.01);
}

TEST(Deployment, NeverDampRespected) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.5;
  const topology::AsId protected_as = graph.as_ids().front();
  config.never_damp = {protected_as};
  stats::Rng rng(3);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  EXPECT_EQ(plan.find(protected_as), nullptr);
}

TEST(Deployment, VendorDefaultShareNearSixtyPercent) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.5;  // many dampers for a stable estimate
  stats::Rng rng(4);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  EXPECT_NEAR(plan.vendor_default_share(), 0.6, 0.15);
}

TEST(Deployment, DetectableExcludesHiddenScopes) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.5;
  stats::Rng rng(5);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  const auto all = plan.dampers();
  const auto detectable = plan.detectable_dampers();
  EXPECT_LE(detectable.size(), all.size());
  for (const AsDeployment& d : plan.deployments) {
    const bool hidden = d.scope == Scope::kCustomersOnly ||
                        d.scope == Scope::kLongPrefixes;
    EXPECT_EQ(detectable.count(d.as) == 0, hidden) << "AS " << d.as;
  }
}

TEST(Deployment, ExemptNeighborIsARealNeighbor) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.6;
  stats::Rng rng(6);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  for (const AsDeployment& d : plan.deployments) {
    if (d.scope != Scope::kExemptOneNeighbor) continue;
    EXPECT_TRUE(graph.has_link(d.as, d.exempt_neighbor));
  }
}

TEST(Deployment, CustomersOnlyNeverOnStubs) {
  // Stubs have no customers; the planner must fall back to all-sessions.
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.8;
  stats::Rng rng(7);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  for (const AsDeployment& d : plan.deployments) {
    if (d.scope != Scope::kCustomersOnly) continue;
    EXPECT_FALSE(
        graph.neighbors_with(d.as, topology::Relation::kCustomer).empty());
  }
}

TEST(Deployment, DeterministicForSeed) {
  const auto graph = make_graph();
  DeploymentConfig config;
  stats::Rng a(8), b(8);
  const auto p1 = plan_deployment(graph, config, a);
  const auto p2 = plan_deployment(graph, config, b);
  ASSERT_EQ(p1.deployments.size(), p2.deployments.size());
  for (std::size_t i = 0; i < p1.deployments.size(); ++i) {
    EXPECT_EQ(p1.deployments[i].as, p2.deployments[i].as);
    EXPECT_EQ(p1.deployments[i].scope, p2.deployments[i].scope);
    EXPECT_EQ(p1.deployments[i].variant.name, p2.deployments[i].variant.name);
  }
}

TEST(Deployment, RejectsBadConfigs) {
  const auto graph = make_graph();
  stats::Rng rng(9);
  DeploymentConfig config;
  config.damping_fraction = 1.5;
  EXPECT_THROW(plan_deployment(graph, config, rng), std::invalid_argument);
  config = DeploymentConfig{};
  config.variant_weights = {1.0};
  EXPECT_THROW(plan_deployment(graph, config, rng), std::invalid_argument);
  config = DeploymentConfig{};
  config.scope_weights = {1.0, 1.0};
  EXPECT_THROW(plan_deployment(graph, config, rng), std::invalid_argument);
}

// The triggering boundary is monotone in the suppress threshold: raising
// the threshold can only shrink the set of triggering intervals.
TEST(Variants, TriggeringMonotoneInSuppressThreshold) {
  rfd::Params base = rfd::cisco_defaults();
  sim::Duration previous = sim::minutes(60);
  for (double threshold : {1500.0, 2000.0, 3000.0, 4000.0}) {
    rfd::Params p = base;
    p.suppress_threshold = threshold;
    RfdVariant v{"sweep", p, false};
    const sim::Duration trigger = v.max_triggering_interval();
    EXPECT_LE(trigger, previous) << "threshold " << threshold;
    previous = trigger;
  }
}

// Shorter half-life decays penalties faster: the triggering interval can
// only shrink.
TEST(Variants, TriggeringMonotoneInHalfLife) {
  sim::Duration previous = 0;
  for (int hl : {5, 10, 15, 20}) {
    rfd::Params p = rfd::cisco_defaults();
    p.half_life = sim::minutes(hl);
    p.max_suppress_time = sim::minutes(4 * hl);  // keep ceiling valid
    RfdVariant v{"sweep", p, false};
    const sim::Duration trigger = v.max_triggering_interval();
    EXPECT_GE(trigger, previous) << "half-life " << hl;
    previous = trigger;
  }
}

class ScopeWeightSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScopeWeightSweep, SingleScopeConfigsProduceOnlyThatScope) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.3;
  config.scope_weights = {0, 0, 0, 0, 0};
  config.scope_weights[GetParam()] = 1.0;
  stats::Rng rng(31);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  const auto wanted = static_cast<Scope>(GetParam());
  for (const AsDeployment& d : plan.deployments) {
    // Fallbacks: exempt-one-neighbor falls back to all-sessions when an AS
    // has no neighbors; customers-only falls back for stubs.
    if (d.scope == Scope::kAllSessions &&
        (wanted == Scope::kExemptOneNeighbor || wanted == Scope::kCustomersOnly))
      continue;
    EXPECT_EQ(d.scope, wanted);
  }
}

INSTANTIATE_TEST_SUITE_P(Scopes, ScopeWeightSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(Deployment, TierWeightsBiasSelection) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.2;
  config.transit_weight = 50.0;
  config.stub_weight = 0.1;
  stats::Rng rng(33);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  std::size_t transit = 0;
  for (const AsDeployment& d : plan.deployments)
    if (graph.tier(d.as) == topology::Tier::kTransit) ++transit;
  // With 30 transits vs 80 stubs but 500x relative weight, the overwhelming
  // majority of picks must be transits.
  EXPECT_GT(static_cast<double>(transit) /
                static_cast<double>(plan.deployments.size()),
            0.8);
}

TEST(Deployment, ZeroWeightTierNeverPicked) {
  const auto graph = make_graph();
  DeploymentConfig config;
  config.damping_fraction = 0.3;
  config.stub_weight = 0.0;
  stats::Rng rng(35);
  const DeploymentPlan plan = plan_deployment(graph, config, rng);
  for (const AsDeployment& d : plan.deployments)
    EXPECT_NE(graph.tier(d.as), topology::Tier::kStub);
}

TEST(Deployment, ScopeNames) {
  EXPECT_EQ(to_string(Scope::kAllSessions), "all-sessions");
  EXPECT_EQ(to_string(Scope::kCustomersOnly), "customers-only");
  EXPECT_EQ(to_string(Scope::kExemptOneNeighbor), "exempt-one-neighbor");
  EXPECT_EQ(to_string(Scope::kShortPrefixes), "short-prefixes");
  EXPECT_EQ(to_string(Scope::kLongPrefixes), "long-prefixes");
}

}  // namespace
}  // namespace because::experiment
