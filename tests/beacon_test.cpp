#include <gtest/gtest.h>

#include "beacon/controller.hpp"
#include "beacon/schedule.hpp"
#include "bgp/network.hpp"

namespace because::beacon {
namespace {

BeaconSchedule schedule_1min() {
  BeaconSchedule s;
  s.update_interval = sim::minutes(1);
  s.burst_length = sim::minutes(10);
  s.break_length = sim::minutes(30);
  s.pairs = 2;
  s.warmup = sim::minutes(5);
  return s;
}

TEST(Schedule, ValidateRejectsDegenerate) {
  BeaconSchedule s = schedule_1min();
  s.update_interval = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = schedule_1min();
  s.burst_length = sim::seconds(30);  // too short for one flap at 1 min
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = schedule_1min();
  s.pairs = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Schedule, ExpandStartsWithInitialAnnouncement) {
  const auto events = expand(schedule_1min());
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().when, 0);
  EXPECT_EQ(events.front().type, bgp::UpdateType::kAnnouncement);
}

TEST(Schedule, BurstsAlternateStartWithdrawalEndAnnouncement) {
  const BeaconSchedule s = schedule_1min();
  const auto events = expand(s);
  const auto bursts = burst_windows(s);
  for (const Window& burst : bursts) {
    std::vector<BeaconEvent> in_burst;
    for (const BeaconEvent& e : events)
      if (e.when >= burst.begin && e.when < burst.end) in_burst.push_back(e);
    ASSERT_FALSE(in_burst.empty());
    EXPECT_EQ(in_burst.front().type, bgp::UpdateType::kWithdrawal);
    EXPECT_EQ(in_burst.back().type, bgp::UpdateType::kAnnouncement);
    for (std::size_t i = 0; i < in_burst.size(); ++i) {
      const auto expected = (i % 2 == 0) ? bgp::UpdateType::kWithdrawal
                                         : bgp::UpdateType::kAnnouncement;
      EXPECT_EQ(in_burst[i].type, expected);
      if (i > 0) {
        EXPECT_EQ(in_burst[i].when - in_burst[i - 1].when, s.update_interval);
      }
    }
  }
}

TEST(Schedule, NoEventsDuringBreaks) {
  const BeaconSchedule s = schedule_1min();
  const auto events = expand(s);
  for (const Window& brk : break_windows(s))
    for (const BeaconEvent& e : events)
      EXPECT_FALSE(e.when > brk.begin && e.when < brk.end)
          << "event at " << e.when << " inside break";
}

TEST(Schedule, WindowsAreContiguous) {
  const BeaconSchedule s = schedule_1min();
  const auto bursts = burst_windows(s);
  const auto breaks = break_windows(s);
  ASSERT_EQ(bursts.size(), s.pairs);
  ASSERT_EQ(breaks.size(), s.pairs);
  EXPECT_EQ(bursts[0].begin, s.start + s.warmup);
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    EXPECT_EQ(bursts[i].end - bursts[i].begin, s.burst_length);
    EXPECT_EQ(breaks[i].begin, bursts[i].end);
    if (i + 1 < bursts.size()) {
      EXPECT_EQ(bursts[i + 1].begin, breaks[i].end);
    }
  }
  EXPECT_EQ(s.end(), breaks.back().end);
}

TEST(Schedule, EventCountMatchesInterval) {
  BeaconSchedule s = schedule_1min();
  const auto n1 = expand(s).size();
  s.update_interval = sim::minutes(2);
  const auto n2 = expand(s).size();
  EXPECT_GT(n1, n2);  // faster flapping -> more events
}

TEST(Schedule, AnchorAlternatesOnOff) {
  AnchorSchedule s;
  s.period = sim::hours(2);
  s.cycles = 3;
  const auto events = expand(s);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto expected = (i % 2 == 0) ? bgp::UpdateType::kAnnouncement
                                       : bgp::UpdateType::kWithdrawal;
    EXPECT_EQ(events[i].type, expected);
  }
  EXPECT_EQ(events[1].when - events[0].when, sim::hours(2));
  EXPECT_EQ(s.end(), sim::hours(12));
}

TEST(Schedule, AnchorRejectsDegenerate) {
  AnchorSchedule s;
  s.period = 0;
  EXPECT_THROW(expand(s), std::invalid_argument);
  s.period = sim::hours(1);
  s.cycles = 0;
  EXPECT_THROW(expand(s), std::invalid_argument);
}

// ------------------------------------------------------------- controller

struct ControllerFixture {
  topology::AsGraph graph;
  sim::EventQueue queue;
  stats::Rng rng{1};

  ControllerFixture() {
    graph.add_as(1, topology::Tier::kStub);
    graph.add_as(2, topology::Tier::kTier1);
    graph.add_provider_customer(2, 1);
  }
};

TEST(Controller, DrivesOriginRouter) {
  ControllerFixture f;
  bgp::Network net(f.graph, bgp::NetworkConfig{}, f.queue, f.rng);
  beacon::Controller controller(net);
  const bgp::Prefix prefix{1, 24};
  BeaconSchedule s = schedule_1min();
  controller.deploy(1, prefix, s);
  EXPECT_EQ(controller.origin(prefix), 1u);
  EXPECT_FALSE(controller.events(prefix).empty());

  f.queue.run();
  // The schedule ends with an announcement; router 2 must hold the route
  // with the timestamp of the last burst announcement.
  const auto* sel = net.router(2).loc_rib().find(prefix);
  ASSERT_NE(sel, nullptr);
  const auto& events = controller.events(prefix);
  EXPECT_EQ(sel->route.beacon_timestamp, events.back().when);
}

TEST(Controller, RejectsUnknownOrigin) {
  ControllerFixture f;
  bgp::Network net(f.graph, bgp::NetworkConfig{}, f.queue, f.rng);
  beacon::Controller controller(net);
  EXPECT_THROW(controller.deploy(99, bgp::Prefix{1, 24}, schedule_1min()),
               std::invalid_argument);
}

TEST(Controller, RejectsDuplicatePrefix) {
  ControllerFixture f;
  bgp::Network net(f.graph, bgp::NetworkConfig{}, f.queue, f.rng);
  beacon::Controller controller(net);
  controller.deploy(1, bgp::Prefix{1, 24}, schedule_1min());
  EXPECT_THROW(controller.deploy(1, bgp::Prefix{1, 24}, schedule_1min()),
               std::invalid_argument);
}

TEST(Controller, UnknownPrefixQueriesThrow) {
  ControllerFixture f;
  bgp::Network net(f.graph, bgp::NetworkConfig{}, f.queue, f.rng);
  beacon::Controller controller(net);
  EXPECT_THROW(controller.events(bgp::Prefix{5, 24}), std::out_of_range);
  EXPECT_THROW(controller.origin(bgp::Prefix{5, 24}), std::out_of_range);
}

}  // namespace
}  // namespace because::beacon
