#include <gtest/gtest.h>

#include "core/categorize.hpp"

namespace because::core {
namespace {

MarginalSummary make_summary(double mean, double lo, double hi) {
  MarginalSummary s;
  s.mean = mean;
  s.hdpi = stats::Interval{lo, hi};
  return s;
}

TEST(Categorize, ConfidentNonDamperIsCategory1) {
  // Figure 9(b): mass at 0, almost no spread.
  EXPECT_EQ(categorize(make_summary(0.02, 0.0, 0.08)),
            Category::kHighlyLikelyNot);
}

TEST(Categorize, LowMeanWideIntervalIsCategory2) {
  // Low mean but the interval reaches into uncertain territory: only
  // "likely" not damping.
  EXPECT_EQ(categorize(make_summary(0.1, 0.0, 0.4)), Category::kLikelyNot);
}

TEST(Categorize, MidLowMeanIsCategory2) {
  EXPECT_EQ(categorize(make_summary(0.2, 0.05, 0.35)), Category::kLikelyNot);
}

TEST(Categorize, UncertainBandIsCategory3) {
  EXPECT_EQ(categorize(make_summary(0.5, 0.05, 0.95)), Category::kUncertain);
  EXPECT_EQ(categorize(make_summary(0.35, 0.1, 0.6)), Category::kUncertain);
  EXPECT_EQ(categorize(make_summary(0.69, 0.3, 0.9)), Category::kUncertain);
}

TEST(Categorize, PriorRecoveredIsCategory3) {
  // Figure 9(d): the Beta prior persists for no-data ASs -> uncertain.
  EXPECT_EQ(categorize(make_summary(0.5, 0.03, 0.97)), Category::kUncertain);
}

TEST(Categorize, HighMeanIsCategory4) {
  EXPECT_EQ(categorize(make_summary(0.75, 0.4, 0.95)), Category::kLikelyDamping);
}

TEST(Categorize, ConfidentDamperIsCategory5) {
  // Figure 9(a): mass at 1, very little spread.
  EXPECT_EQ(categorize(make_summary(0.97, 0.9, 1.0)),
            Category::kHighlyLikelyDamping);
}

TEST(Categorize, HighMeanWideIntervalOnlyCategory4) {
  // Mean above 0.85 but the credible interval dips low: not "highly likely".
  EXPECT_EQ(categorize(make_summary(0.87, 0.5, 1.0)), Category::kLikelyDamping);
}

TEST(Categorize, CutoffBoundaries) {
  EXPECT_EQ(categorize(make_summary(0.15, 0.1, 0.2)), Category::kLikelyNot);
  EXPECT_EQ(categorize(make_summary(0.3, 0.2, 0.4)), Category::kUncertain);
  EXPECT_EQ(categorize(make_summary(0.7, 0.6, 0.8)), Category::kLikelyDamping);
  EXPECT_EQ(categorize(make_summary(0.85, 0.85, 0.9)),
            Category::kHighlyLikelyDamping);
}

TEST(Categorize, CustomCutoffs) {
  CategoryCutoffs cutoffs;
  cutoffs.mid_high = 0.6;
  EXPECT_EQ(categorize(make_summary(0.65, 0.5, 0.8), cutoffs),
            Category::kLikelyDamping);
}

TEST(Categorize, HighestFlagWins) {
  EXPECT_EQ(highest(Category::kUncertain, Category::kLikelyDamping),
            Category::kLikelyDamping);
  EXPECT_EQ(highest(Category::kHighlyLikelyNot, Category::kLikelyNot),
            Category::kLikelyNot);
  EXPECT_EQ(highest(Category::kHighlyLikelyDamping, Category::kUncertain),
            Category::kHighlyLikelyDamping);
}

TEST(Categorize, HighestAllElementwise) {
  const std::vector<Category> a{Category::kUncertain, Category::kLikelyNot};
  const std::vector<Category> b{Category::kLikelyDamping, Category::kHighlyLikelyNot};
  const auto out = highest_all(a, b);
  EXPECT_EQ(out[0], Category::kLikelyDamping);
  EXPECT_EQ(out[1], Category::kLikelyNot);
  EXPECT_THROW(highest_all(a, {Category::kUncertain}), std::invalid_argument);
}

TEST(Categorize, IsDampingThreshold) {
  EXPECT_FALSE(is_damping(Category::kHighlyLikelyNot));
  EXPECT_FALSE(is_damping(Category::kLikelyNot));
  EXPECT_FALSE(is_damping(Category::kUncertain));
  EXPECT_TRUE(is_damping(Category::kLikelyDamping));
  EXPECT_TRUE(is_damping(Category::kHighlyLikelyDamping));
}

TEST(Categorize, CategorizeAllMapsEachSummary) {
  const std::vector<MarginalSummary> summaries{
      make_summary(0.02, 0.0, 0.05), make_summary(0.95, 0.9, 1.0)};
  const auto cats = categorize_all(summaries);
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0], Category::kHighlyLikelyNot);
  EXPECT_EQ(cats[1], Category::kHighlyLikelyDamping);
}

TEST(CategorizeLiteral, NarrowMarginalsBehaveLikeDefault) {
  // Crisp marginals agree under both interpretations.
  EXPECT_EQ(categorize_literal(make_summary(0.02, 0.0, 0.08)),
            Category::kHighlyLikelyNot);
  EXPECT_EQ(categorize_literal(make_summary(0.2, 0.15, 0.28)),
            Category::kLikelyNot);
  EXPECT_EQ(categorize_literal(make_summary(0.97, 0.9, 1.0)),
            Category::kHighlyLikelyDamping);
  EXPECT_EQ(categorize_literal(make_summary(0.75, 0.72, 0.8)),
            Category::kLikelyDamping);
}

TEST(CategorizeLiteral, PriorShapedMarginalBecomesCategory5) {
  // The documented defect of the literal reading: a wide no-data marginal
  // raises both the A-based cat-1 flag and the B-based cat-5 flag, and the
  // "highest flag" rule lands at 5 (the default interpretation keeps it 3).
  const auto prior_shaped = make_summary(0.5, 0.03, 0.97);
  EXPECT_EQ(categorize_literal(prior_shaped), Category::kHighlyLikelyDamping);
  EXPECT_EQ(categorize(prior_shaped), Category::kUncertain);
}

TEST(CategorizeLiteral, ElseIsTheFallbackOnly) {
  // Mid-mean, mid-interval: no row matches, Table 1's 'Else' applies.
  EXPECT_EQ(categorize_literal(make_summary(0.5, 0.35, 0.65)),
            Category::kUncertain);
}

TEST(Categorize, ToStringDescriptive) {
  EXPECT_NE(to_string(Category::kUncertain).find("uncertain"), std::string::npos);
  EXPECT_NE(to_string(Category::kHighlyLikelyDamping).find("damping"),
            std::string::npos);
}

}  // namespace
}  // namespace because::core
