#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "rov/rov.hpp"
#include "topology/generator.hpp"

namespace because::rov {
namespace {

std::vector<topology::AsPath> sample_paths() {
  return {
      {100, 50, 10}, {100, 60, 10}, {200, 50, 11},
      {200, 70, 11}, {300, 80, 12}, {300, 50, 12},
  };
}

TEST(Rov, LabelsPathsByMembership) {
  const auto bench = make_rov_benchmark(sample_paths(), {50});
  EXPECT_EQ(bench.dataset.path_count(), 6u);
  // 3 of 6 paths contain AS 50.
  EXPECT_NEAR(bench.rov_path_share, 0.5, 1e-12);
  std::size_t rov_paths = 0;
  for (std::size_t j = 0; j < bench.dataset.path_count(); ++j)
    if (bench.dataset.shows_property(j)) ++rov_paths;
  EXPECT_EQ(rov_paths, 3u);
}

TEST(Rov, EmptyRovSetLabelsNothing) {
  const auto bench = make_rov_benchmark(sample_paths(), {});
  EXPECT_DOUBLE_EQ(bench.rov_path_share, 0.0);
}

TEST(Rov, PlantReachesTargetShare) {
  stats::Rng rng(3);
  const auto paths = sample_paths();
  const auto rov = plant_rov_ases(paths, 0.8, 100, rng);
  const auto bench = make_rov_benchmark(paths, rov);
  EXPECT_GE(bench.rov_path_share, 0.8);
}

TEST(Rov, PlantRespectsMaxAses) {
  stats::Rng rng(5);
  const auto rov = plant_rov_ases(sample_paths(), 1.0, 2, rng);
  EXPECT_LE(rov.size(), 2u);
}

TEST(Rov, PlantOnEmptyPathsIsEmpty) {
  stats::Rng rng(7);
  EXPECT_TRUE(plant_rov_ases({}, 0.9, 10, rng).empty());
}

TEST(Rov, BenchmarkKeepsGroundTruth) {
  const auto bench = make_rov_benchmark(sample_paths(), {50, 70});
  EXPECT_EQ(bench.rov_ases.size(), 2u);
  EXPECT_TRUE(bench.rov_ases.count(50));
  EXPECT_TRUE(bench.rov_ases.count(70));
}

// ------------------------------------------------ RFC 6811 drop-invalid

TEST(RovFilter, InvalidPrefixDroppedOnImport) {
  // Chain 1 - 2 - 3; AS 2 filters the invalid prefix, so 3 never learns it
  // while the valid twin flows through.
  topology::AsGraph graph;
  graph.add_as(1, topology::Tier::kStub);
  graph.add_as(2, topology::Tier::kTransit);
  graph.add_as(3, topology::Tier::kTier1);
  graph.add_provider_customer(2, 1);
  graph.add_provider_customer(3, 2);

  sim::EventQueue queue;
  stats::Rng rng(1);
  bgp::Network net(graph, bgp::NetworkConfig{}, queue, rng);
  const bgp::Prefix valid{1, 24}, invalid{2, 24};
  net.router(2).add_rov_invalid(invalid);
  EXPECT_TRUE(net.router(2).rov_filters(invalid));
  EXPECT_FALSE(net.router(2).rov_filters(valid));

  net.router(1).originate(valid, 0);
  net.router(1).originate(invalid, 0);
  queue.run();

  EXPECT_NE(net.router(3).loc_rib().find(valid), nullptr);
  EXPECT_EQ(net.router(2).loc_rib().find(invalid), nullptr);
  EXPECT_EQ(net.router(3).loc_rib().find(invalid), nullptr);
}

TEST(RovFilter, InvalidRoutesAroundTheFilter) {
  // Diamond: the invalid prefix is filtered on one branch but reaches the
  // top via the other - the path-hunting effect Reuter-style setups must
  // control for.
  topology::AsGraph graph;
  graph.add_as(1, topology::Tier::kStub);
  graph.add_as(2, topology::Tier::kTransit);
  graph.add_as(3, topology::Tier::kTransit);
  graph.add_as(4, topology::Tier::kTier1);
  graph.add_provider_customer(2, 1);
  graph.add_provider_customer(3, 1);
  graph.add_provider_customer(4, 2);
  graph.add_provider_customer(4, 3);

  sim::EventQueue queue;
  stats::Rng rng(2);
  bgp::Network net(graph, bgp::NetworkConfig{}, queue, rng);
  const bgp::Prefix invalid{2, 24};
  net.router(2).add_rov_invalid(invalid);
  net.router(1).originate(invalid, 0);
  queue.run();

  const auto* sel = net.router(4).loc_rib().find(invalid);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(net.paths()->to_path(sel->route.path), (topology::AsPath{3, 1}));
}

TEST(RovMeasurement, MeasuredLabelsMatchMembership) {
  topology::GeneratorConfig tconfig;
  tconfig.tier1_count = 3;
  tconfig.transit_count = 15;
  tconfig.stub_count = 40;
  stats::Rng trng(5);
  const auto graph = topology::generate(tconfig, trng);

  // Plant ROV at a few transit ASs.
  std::unordered_set<topology::AsId> rov;
  for (topology::AsId as : graph.as_ids()) {
    if (graph.tier(as) == topology::Tier::kTransit && rov.size() < 4)
      rov.insert(as);
  }

  RovMeasurementConfig config;
  config.origins = 3;
  config.vantage_points = 20;
  const auto measurement = run_rov_measurement(graph, rov, config);

  EXPECT_GT(measurement.paths_total, 10u);
  // Measured labels should almost always equal exact set membership; the
  // reroute edge case is rare.
  EXPECT_LE(measurement.label_disagreements, measurement.paths_total / 10);
  EXPECT_GT(measurement.rov_path_share, 0.0);
  EXPECT_LT(measurement.rov_path_share, 1.0);
}

TEST(RovMeasurement, NoRovMeansNoLabels) {
  topology::GeneratorConfig tconfig;
  tconfig.tier1_count = 2;
  tconfig.transit_count = 6;
  tconfig.stub_count = 10;
  stats::Rng trng(6);
  const auto graph = topology::generate(tconfig, trng);
  const auto measurement = run_rov_measurement(graph, {}, RovMeasurementConfig{});
  EXPECT_DOUBLE_EQ(measurement.rov_path_share, 0.0);
  EXPECT_EQ(measurement.label_disagreements, 0u);
}

}  // namespace
}  // namespace because::rov
