#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "topology/generator.hpp"
#include "topology/paths.hpp"

namespace because::bgp {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::Relation;
using topology::Tier;

const Prefix kPrefix{1, 24};

AsGraph diamond() {
  AsGraph g;
  g.add_as(1, Tier::kStub);
  g.add_as(2, Tier::kTransit);
  g.add_as(3, Tier::kTransit);
  g.add_as(4, Tier::kTier1);
  g.add_provider_customer(2, 1);
  g.add_provider_customer(3, 1);
  g.add_provider_customer(4, 2);
  g.add_provider_customer(4, 3);
  return g;
}

TEST(Network, BuildsRoutersAndSessions) {
  sim::EventQueue queue;
  stats::Rng rng(1);
  const AsGraph g = diamond();
  Network net(g, NetworkConfig{}, queue, rng);
  EXPECT_EQ(net.router_count(), 4u);
  EXPECT_NE(net.router(1).session(2), nullptr);
  EXPECT_NE(net.router(2).session(1), nullptr);
  EXPECT_EQ(net.router(1).session(4), nullptr);  // not adjacent
}

TEST(Network, LinkDelaysSymmetricAndBounded) {
  sim::EventQueue queue;
  stats::Rng rng(2);
  NetworkConfig config;
  config.min_link_delay = sim::milliseconds(50);
  config.max_link_delay = sim::milliseconds(200);
  const AsGraph g = diamond();
  Network net(g, config, queue, rng);
  for (auto [a, b] : {std::pair<AsId, AsId>{1, 2}, {1, 3}, {2, 4}, {3, 4}}) {
    const sim::Duration d = net.link_delay(a, b);
    EXPECT_EQ(d, net.link_delay(b, a));
    EXPECT_GE(d, config.min_link_delay);
    EXPECT_LE(d, config.max_link_delay);
  }
  EXPECT_THROW(net.link_delay(1, 4), std::out_of_range);
}

TEST(Network, RouteReachesEveryAs) {
  sim::EventQueue queue;
  stats::Rng rng(3);
  const AsGraph g = diamond();
  Network net(g, NetworkConfig{}, queue, rng);
  net.router(1).originate(kPrefix, 0);
  queue.run();
  for (AsId as : g.as_ids()) {
    if (as == 1) continue;
    EXPECT_NE(net.router(as).loc_rib().find(kPrefix), nullptr)
        << "AS " << as << " did not learn the route";
  }
}

TEST(Network, AllSelectedPathsAreValleyFree) {
  sim::EventQueue queue;
  stats::Rng rng(4);
  topology::GeneratorConfig tconfig;
  tconfig.tier1_count = 3;
  tconfig.transit_count = 15;
  tconfig.stub_count = 40;
  const AsGraph g = topology::generate(tconfig, rng);
  Network net(g, NetworkConfig{}, queue, rng);

  const AsId origin = g.as_ids().back();  // a stub
  net.router(origin).originate(kPrefix, 0);
  queue.run();

  for (AsId as : g.as_ids()) {
    const Selected* sel = net.router(as).loc_rib().find(kPrefix);
    if (sel == nullptr || !sel->neighbor.has_value()) continue;
    // Full path from this AS to the origin.
    topology::AsPath path{as};
    const auto span = net.paths()->span(sel->route.path);
    path.insert(path.end(), span.begin(), span.end());
    EXPECT_TRUE(topology::is_valley_free(g, path))
        << "AS " << as << " selected a non-valley-free path";
    EXPECT_FALSE(topology::has_loop(path));
    EXPECT_EQ(path.back(), origin);
  }
}

TEST(Network, MraiLimitsUpdateRate) {
  sim::EventQueue queue;
  stats::Rng rng(5);
  NetworkConfig config;
  config.mrai = sim::seconds(30);
  const AsGraph g = diamond();
  Network net(g, config, queue, rng);

  // Rapid re-originations (attribute changes) within one MRAI window: the
  // sessions must coalesce them.
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(sim::seconds(i), [&net, i] {
      net.router(1).originate(kPrefix, sim::seconds(i));
    });
  }
  queue.run();
  const Session* session = net.router(1).session(2);
  ASSERT_NE(session, nullptr);
  EXPECT_LE(session->updates_sent(), 3u);  // immediate + ~1 flush per window

  // The final state still converges to the latest timestamp everywhere.
  const Selected* sel = net.router(4).loc_rib().find(kPrefix);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->route.beacon_timestamp, sim::seconds(9));
}

TEST(Network, ResetSessionRecovers) {
  sim::EventQueue queue;
  stats::Rng rng(6);
  const AsGraph g = diamond();
  Network net(g, NetworkConfig{}, queue, rng);
  net.router(1).originate(kPrefix, 0);
  queue.run();
  ASSERT_NE(net.router(4).loc_rib().find(kPrefix), nullptr);

  net.reset_session(1, 2);
  queue.run();
  // Both branches converge again after the reset.
  EXPECT_NE(net.router(2).loc_rib().find(kPrefix), nullptr);
  EXPECT_NE(net.router(4).loc_rib().find(kPrefix), nullptr);
}

TEST(Network, UnknownAsThrows) {
  sim::EventQueue queue;
  stats::Rng rng(7);
  const AsGraph g = diamond();
  Network net(g, NetworkConfig{}, queue, rng);
  EXPECT_THROW(net.router(99), std::out_of_range);
}

TEST(Network, RejectsBadDelayRange) {
  sim::EventQueue queue;
  stats::Rng rng(8);
  NetworkConfig config;
  config.min_link_delay = sim::milliseconds(100);
  config.max_link_delay = sim::milliseconds(10);
  const AsGraph g = diamond();
  EXPECT_THROW(Network(g, config, queue, rng), std::invalid_argument);
}

TEST(Network, DeterministicForSeed) {
  const AsGraph g = diamond();
  sim::EventQueue q1, q2;
  stats::Rng r1(9), r2(9);
  Network n1(g, NetworkConfig{}, q1, r1);
  Network n2(g, NetworkConfig{}, q2, r2);
  for (auto [a, b] : {std::pair<AsId, AsId>{1, 2}, {2, 4}})
    EXPECT_EQ(n1.link_delay(a, b), n2.link_delay(a, b));
}

}  // namespace
}  // namespace because::bgp
