// End-to-end tests: campaign -> labeling -> BeCAUSe inference -> evaluation
// against the simulator's ground truth, plus the ROV benchmark (§7).
#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "experiment/campaign.hpp"
#include "topology/generator.hpp"
#include "experiment/figures.hpp"
#include "experiment/pipeline.hpp"
#include "heuristics/combined.hpp"
#include "rov/rov.hpp"

namespace because {
namespace {

using experiment::CampaignConfig;
using experiment::CampaignResult;
using experiment::InferenceConfig;
using experiment::InferenceResult;

struct EndToEnd {
  CampaignResult campaign;
  InferenceResult inference;
};

const EndToEnd& shared_run() {
  static const EndToEnd run = [] {
    CampaignConfig config = CampaignConfig::small();
    config.seed = 99;
    config.pairs = 4;
    CampaignResult campaign = run_campaign(config);

    InferenceConfig inference_config = InferenceConfig::fast();
    inference_config.mh.samples = 800;
    inference_config.mh.burn_in = 400;
    InferenceResult inference =
        experiment::run_inference(campaign.labeled, campaign.site_set(),
                                  inference_config);
    return EndToEnd{std::move(campaign), std::move(inference)};
  }();
  return run;
}

TEST(EndToEnd, HighPrecisionAgainstGroundTruth) {
  const EndToEnd& run = shared_run();
  const auto eval = core::evaluate(run.inference.dataset,
                                   run.inference.categories,
                                   run.campaign.plan.dampers());
  // The paper reports 100% precision for BeCAUSe; the simulated setup must
  // stay close to that (no or almost no false positives).
  EXPECT_GE(eval.matrix.precision(), 0.9)
      << "false positives: " << eval.false_positives.size();
}

TEST(EndToEnd, ReasonableRecallOnDetectableDampers) {
  const EndToEnd& run = shared_run();
  // Restrict to detectable dampers that actually appear on measured paths.
  std::unordered_set<topology::AsId> scope;
  for (std::size_t n = 0; n < run.inference.dataset.as_count(); ++n)
    scope.insert(run.inference.dataset.as_at(n));
  const auto eval = core::evaluate(run.inference.dataset,
                                   run.inference.categories,
                                   run.campaign.plan.detectable_dampers(), scope);
  // The paper reports 87% recall; visibility issues make this scenario-
  // dependent, so assert a sane lower bound.
  EXPECT_GE(eval.matrix.recall(), 0.4);
}

TEST(EndToEnd, DampingShareIsPlausibleLowerBound) {
  const EndToEnd& run = shared_run();
  const double share = experiment::damping_share(run.inference.categories);
  // Deployment fraction is 12%; the measured lower bound must be positive
  // and cannot wildly exceed the planted fraction.
  EXPECT_GT(share, 0.0);
  EXPECT_LT(share, 0.35);
}

TEST(EndToEnd, HeuristicsRunOnCampaignData) {
  const EndToEnd& run = shared_run();
  std::vector<heuristics::Experiment> experiments;
  for (const auto& b : run.campaign.beacons)
    experiments.push_back(heuristics::Experiment{b.prefix, b.schedule});

  labeling::PathDataset dataset;
  for (const auto& p : run.campaign.labeled)
    dataset.add_path(p.path, p.rfd, run.campaign.site_set());

  const auto scores = heuristics::run_heuristics(
      dataset, run.campaign.labeled, run.campaign.observed, run.campaign.store,
      experiments);
  // The paper notes the heuristics "need tuning that is absent from the
  // Bayesian approach"; 0.7 is the tuned threshold for this scenario.
  const auto predicted = heuristics::heuristic_prediction(scores.combined, 0.7);
  const auto eval = core::evaluate_bool(dataset, predicted,
                                        run.campaign.plan.dampers());
  // Heuristics work but are less precise than BeCAUSe (Table 4's story).
  EXPECT_GT(eval.matrix.precision(), 0.5);
}

TEST(EndToEnd, CategoriesCoverFiveLevels) {
  const EndToEnd& run = shared_run();
  const auto counts = experiment::category_counts(run.inference.categories);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  EXPECT_EQ(total, run.inference.dataset.as_count());
  // At least the confident-clean and damping buckets must be populated.
  EXPECT_GT(counts[0] + counts[1], 0u);
  EXPECT_GT(counts[3] + counts[4], 0u);
}

TEST(EndToEnd, RovBenchmarkHighPrecision) {
  // §7: build the ROV benchmark from every path the campaign observed
  // (the paper collected *all* AS paths of the two RPKI beacon prefixes).
  const EndToEnd& run = shared_run();
  std::vector<topology::AsPath> paths;
  for (const auto& p : run.campaign.observed) paths.push_back(p.path);
  ASSERT_FALSE(paths.empty());

  stats::Rng rng(7);
  auto rov_ases = rov::plant_rov_ases(paths, 0.9, 25, rng, 10);
  const auto bench = rov::make_rov_benchmark(paths, std::move(rov_ases));
  EXPECT_GE(bench.rov_path_share, 0.75);

  InferenceConfig config = InferenceConfig::fast();
  config.mh.samples = 800;
  config.mh.burn_in = 400;
  const auto result = experiment::run_inference(bench.dataset, config);

  const auto eval = core::evaluate(result.dataset, result.categories,
                                   bench.rov_ases);
  EXPECT_GE(eval.matrix.precision(), 0.9);
  // Recall is limited by ROV ASs hiding behind each other (the paper reports
  // 64%); just require that a meaningful share is found.
  EXPECT_GE(eval.matrix.recall(), 0.2);
}

TEST(EndToEnd, MeasuredRovExperimentAgreesWithMembership) {
  const EndToEnd& run = shared_run();
  std::unordered_set<topology::AsId> rov;
  for (topology::AsId as : run.campaign.graph.as_ids()) {
    if (run.campaign.graph.tier(as) == topology::Tier::kTransit && rov.size() < 5)
      rov.insert(as);
  }
  rov::RovMeasurementConfig config;
  config.origins = 2;
  config.vantage_points = 15;
  const auto a = rov::run_rov_measurement(run.campaign.graph, rov, config);
  const auto b = rov::run_rov_measurement(run.campaign.graph, rov, config);
  // Deterministic and (near-)exact labels.
  EXPECT_EQ(a.paths_total, b.paths_total);
  EXPECT_EQ(a.label_disagreements, b.label_disagreements);
  EXPECT_LE(a.label_disagreements, a.paths_total / 10);
}

TEST(EndToEnd, InferenceDegradesGracefullyUnderHeavyLabelNoise) {
  // Flip 30% of the labels: precision should fall but the pipeline must
  // stay numerically healthy and keep the noise-explained accounting sane.
  const EndToEnd& run = shared_run();
  stats::Rng rng(123);
  auto noisy = run.campaign.labeled;
  for (auto& p : noisy)
    if (rng.bernoulli(0.3)) p.rfd = !p.rfd;

  InferenceConfig config = InferenceConfig::fast();
  config.noise.false_signature = 0.2;
  config.noise.missed_signature = 0.2;
  config.pinpoint_noise_guard = 0.5;
  const auto result =
      experiment::run_inference(noisy, run.campaign.site_set(), config);

  EXPECT_EQ(result.categories.size(), result.dataset.as_count());
  for (const auto& s : result.mh_summaries) {
    EXPECT_GE(s.mean, 0.0);
    EXPECT_LE(s.mean, 1.0);
    EXPECT_GE(s.hdpi.lo, 0.0);
    EXPECT_LE(s.hdpi.hi, 1.0);
  }
}

TEST(EndToEnd, SessionResetNoiseToleratedByNinetyPercentRule) {
  // Inject heavy aggregator loss; labeling should still produce RFD paths.
  CampaignConfig config = CampaignConfig::small();
  config.seed = 5;
  config.pairs = 4;
  config.missing_aggregator_prob = 0.05;
  const CampaignResult campaign = run_campaign(config);
  std::size_t rfd = 0;
  for (const auto& p : campaign.labeled)
    if (p.rfd) ++rfd;
  EXPECT_GT(rfd, 0u);
}

}  // namespace
}  // namespace because
