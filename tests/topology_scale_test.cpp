// Internet-scale topology smoke tests (ctest labels: slow, topology).
//
// The point of the static warm start is that "converged Internet" baselines
// stop costing events, so campaigns over 70k-AS graphs — the size of the
// real AS-level Internet — become tractable. This suite locks that in:
//
//   * the 1k/5k beacon-delta digest equivalence from warm_start_test is
//     re-asserted at 5k ASes (the acceptance criterion's second point),
//   * static_converge handles a 70k-AS internet_like graph directly, with
//     plausible reach/RIB sizes, sampled valley-freeness, and an
//     allocations-per-seeded-route bound in the spirit of the bench gate
//     (this binary links bench/alloc_hook.cpp),
//   * a statically warm-started campaign over the 70k graph completes end to
//     end within explicit event budgets.
//
// Budgets are generous on purpose: they catch algorithmic blowups, not
// constant factors (bench/bench_sim.cpp records the real numbers).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "../bench/alloc_hook.hpp"
#include "bgp/network.hpp"
#include "bgp/static_converge.hpp"
#include "experiment/campaign.hpp"
#include "stats/rng.hpp"
#include "topology/generator.hpp"
#include "topology/paths.hpp"

namespace because {
namespace {

using bgp::Prefix;
using topology::AsGraph;
using topology::AsId;
using topology::AsPath;
using topology::Tier;

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::pair<std::uint64_t, std::size_t> delta_digest(
    const collector::UpdateStore& store) {
  std::uint64_t hash = 14695981039346656037ULL;
  std::size_t count = 0;
  for (const collector::RecordedUpdate& rec : store.all()) {
    if (rec.update.prefix.id >= experiment::kBaselinePrefixBase) continue;
    ++count;
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, (static_cast<std::uint64_t>(rec.update.prefix.id) << 8) |
                               rec.update.prefix.length);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.beacon_timestamp));
    const auto path = store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return {hash, count};
}

TEST(TopologyScale, WarmStartDigestsMatchAtFiveThousandAses) {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.topology.tier1_count = 8;
  config.topology.transit_count = 500;
  config.topology.stub_count = 4500;
  config.pairs = 1;
  config.burst_length = sim::minutes(8);
  config.break_length = sim::minutes(30);
  config.background_prefixes = 2;
  config.session_resets = 0;
  config.missing_aggregator_prob = 0.0;
  config.network.mrai_jitter = 0.0;
  config.warm_start.baseline_prefixes = 4;
  config.seed = 9;

  config.warm_start.mode = experiment::WarmStart::kDynamic;
  const experiment::CampaignResult dynamic = experiment::run_campaign(config);
  config.warm_start.mode = experiment::WarmStart::kStatic;
  const experiment::CampaignResult statically = experiment::run_campaign(config);

  EXPECT_EQ(dynamic.baseline, statically.baseline);
  EXPECT_LT(statically.events_executed, dynamic.events_executed);
  const auto [dyn_hash, dyn_count] = delta_digest(dynamic.store);
  const auto [sta_hash, sta_count] = delta_digest(statically.store);
  ASSERT_GT(dyn_count, 0u);
  EXPECT_EQ(dyn_count, sta_count);
  EXPECT_EQ(dyn_hash, sta_hash);
}

TEST(TopologyScale, SeventyThousandAsStaticConvergence) {
  stats::Rng gen_rng(70);
  const AsGraph graph =
      topology::generate(topology::internet_like(70'000), gen_rng);
  ASSERT_EQ(graph.as_count(), 70'000u);

  sim::EventQueue queue;
  stats::Rng rng(71);
  bgp::Network network(graph, bgp::NetworkConfig{}, queue, rng);

  // Four baseline prefixes originated at stubs spread across the id space.
  std::vector<AsId> stubs;
  for (AsId as : graph.as_ids())
    if (graph.tier(as) == Tier::kStub) stubs.push_back(as);
  ASSERT_GE(stubs.size(), 4u);
  std::vector<bgp::StaticOrigin> origins;
  for (std::uint32_t k = 0; k < 4; ++k)
    origins.push_back({stubs[k * (stubs.size() / 4)], Prefix{100 + k, 24}, 0});

  const std::uint64_t allocs_before = bench::allocation_count();
  const bgp::StaticConvergeStats stats = bgp::static_converge(network, origins);
  const std::uint64_t allocs = bench::allocation_count() - allocs_before;

  // Convergence completed: one visit per AS per phase per prefix.
  EXPECT_EQ(stats.up_visits, 4u * graph.as_count());
  EXPECT_EQ(stats.down_visits, 4u * graph.as_count());

  // RIB sizes are plausible: nearly every AS reaches every stub-originated
  // prefix, and Adj-RIB-In holds more candidates than winners but not an
  // explosion (bounded by link count, both directions, per prefix).
  EXPECT_GE(stats.reachable_ases, 4u * ((graph.as_count() * 95) / 100));
  EXPECT_GE(stats.seeded_routes, stats.reachable_ases);
  EXPECT_LE(stats.seeded_routes, 4u * 2u * graph.link_count());

  // Allocation discipline, same spirit as the bench gate: seeding writes
  // slab RIBs and interned paths, so the per-route alloc cost must stay O(1)
  // amortised (path-table node + occasional rehash), not O(path length).
  EXPECT_LT(allocs, stats.seeded_routes * 8);

  // Sampled converged paths are valley-free and loop-free.
  const std::vector<AsId> ids = graph.as_ids();
  for (const bgp::StaticOrigin& origin : origins) {
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < ids.size(); i += 499) {
      const bgp::Selected* sel =
          network.router(ids[i]).loc_rib().find(origin.prefix);
      if (sel == nullptr) continue;
      ++sampled;
      AsPath path = network.paths()->to_path(sel->route.path);
      path.insert(path.begin(), ids[i]);
      EXPECT_FALSE(topology::has_loop(path));
      EXPECT_TRUE(topology::is_valley_free(graph, path));
      EXPECT_EQ(path.back(), origin.as);
    }
    EXPECT_GT(sampled, 100u);
  }

  // Seeding scheduled nothing: the event queue is still empty.
  EXPECT_EQ(queue.executed(), 0u);
}

TEST(TopologyScale, SeventyThousandAsWarmStartedCampaignCompletes) {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.topology = topology::internet_like(70'000);
  config.beacon_sites = 1;
  config.update_intervals = {sim::minutes(2)};
  config.prefixes_per_interval = 1;
  config.burst_length = sim::minutes(6);
  config.break_length = sim::minutes(20);
  config.pairs = 1;
  config.include_anchor = false;
  config.include_ripe_reference = false;
  config.vantage_points = 8;
  config.background_prefixes = 0;
  config.session_resets = 0;
  config.missing_aggregator_prob = 0.0;
  config.network.mrai_jitter = 0.0;
  config.warm_start.mode = experiment::WarmStart::kStatic;
  config.warm_start.baseline_prefixes = 4;
  config.seed = 77;

  const experiment::CampaignResult result = experiment::run_campaign(config);
  ASSERT_EQ(result.baseline.size(), 4u);
  EXPECT_GT(result.store.size(), 0u);
  EXPECT_FALSE(result.observed.empty());
  // The event budget only has to cover the beacon-delta phase; a dynamic
  // baseline convergence at this scale would add millions more.
  EXPECT_GT(result.events_executed, 0u);
  EXPECT_LT(result.events_executed, 60'000'000u);
}

}  // namespace
}  // namespace because
