#include <gtest/gtest.h>

#include "experiment/report.hpp"

namespace because::experiment {
namespace {

struct ReportFixture {
  CampaignResult campaign;
  InferenceResult inference;

  ReportFixture() {
    CampaignConfig config = CampaignConfig::small();
    config.seed = 77;
    campaign = run_campaign(config);
    inference = run_inference(campaign.labeled, campaign.site_set(),
                              InferenceConfig::fast());
  }
};

const ReportFixture& fixture() {
  static const ReportFixture f;
  return f;
}

TEST(Report, ContainsEverySection) {
  const std::string report =
      render_study_report(fixture().campaign, fixture().inference);
  EXPECT_NE(report.find("Measurement campaign"), std::string::npos);
  EXPECT_NE(report.find("BeCAUSe inference"), std::string::npos);
  EXPECT_NE(report.find("Evaluation against planted ground truth"),
            std::string::npos);
  EXPECT_NE(report.find("Deployed RFD parameters"), std::string::npos);
  EXPECT_NE(report.find("RFD deployment lower bound"), std::string::npos);
}

TEST(Report, OptionsToggleSections) {
  ReportOptions options;
  options.include_ground_truth = false;
  options.include_parameter_estimates = false;
  const std::string report =
      render_study_report(fixture().campaign, fixture().inference, options);
  EXPECT_EQ(report.find("Evaluation against planted ground truth"),
            std::string::npos);
  EXPECT_EQ(report.find("Deployed RFD parameters"), std::string::npos);
}

TEST(Report, ScatterRowsWhenRequested) {
  ReportOptions options;
  options.include_scatter = true;
  const std::string report =
      render_study_report(fixture().campaign, fixture().inference, options);
  EXPECT_NE(report.find("per-AS marginals"), std::string::npos);
  // One row per measured AS: the AS id of the first dataset entry appears.
  EXPECT_NE(report.find(std::to_string(fixture().inference.dataset.as_at(0))),
            std::string::npos);
}

TEST(Report, ReportsCampaignScaleNumbers) {
  const std::string report =
      render_study_report(fixture().campaign, fixture().inference);
  EXPECT_NE(report.find(std::to_string(fixture().campaign.store.size())),
            std::string::npos);
  EXPECT_NE(report.find(std::to_string(fixture().campaign.labeled.size())),
            std::string::npos);
}

}  // namespace
}  // namespace because::experiment
