#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace because::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1), 1000);
  EXPECT_EQ(minutes(1), 60'000);
  EXPECT_EQ(hours(1), 3'600'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(90)), 90.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(7)), 7.0);
}

/// Core engine contract, asserted on both backends: they must be observably
/// interchangeable (the golden-trace and property tests extend this to whole
/// campaigns and random workloads).
class EventQueueBackends : public ::testing::TestWithParam<EngineBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, EventQueueBackends,
    ::testing::Values(EngineBackend::kCalendar, EngineBackend::kFunctionHeap),
    [](const ::testing::TestParamInfo<EngineBackend>& info) {
      return info.param == EngineBackend::kCalendar ? "Calendar" : "FunctionHeap";
    });

TEST_P(EventQueueBackends, RunsInTimeOrder) {
  EventQueue q(GetParam());
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueBackends, TiesBreakByInsertionOrder) {
  EventQueue q(GetParam());
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(5, [&] { order.push_back(2); });
  q.schedule_at(5, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueBackends, TypedAndClosureEventsInterleaveInOrder) {
  EventQueue q(GetParam());
  std::vector<std::string> order;
  const EventQueue::EventFn record = [](EventQueue&, void* ctx, std::uint64_t a,
                                        std::uint64_t) {
    static_cast<std::vector<std::string>*>(ctx)->push_back("typed" +
                                                           std::to_string(a));
  };
  q.schedule_event_at(5, EventKind::kMraiTimer, record, &order, 1);
  q.schedule_at(5, [&] { order.push_back("closure"); });
  q.schedule_event_at(5, EventKind::kBgpDelivery, record, &order, 2);
  q.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"typed1", "closure", "typed2"}));
}

TEST_P(EventQueueBackends, ClockAdvancesWithEvents) {
  EventQueue q(GetParam());
  Time seen = -1;
  q.schedule_at(42, [&] { seen = q.now(); });
  q.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(q.now(), 42);
}

TEST_P(EventQueueBackends, ScheduleInIsRelative) {
  EventQueue q(GetParam());
  Time seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150);
}

// Regression: the engine used to throw on a `when` before now(), which made
// zero-delay timers racing the clock (e.g. an RFD reuse time just elapsed)
// abort whole campaigns. Past times now clamp to now(), keeping FIFO order
// among everything scheduled "immediately", and are counted for diagnostics.
TEST_P(EventQueueBackends, PastSchedulingClampsToNow) {
  EventQueue q(GetParam());
  std::vector<int> order;
  q.schedule_at(100, [&] {
    q.schedule_at(50, [&] { order.push_back(1); });   // past: clamps to 100
    q.schedule_in(0, [&] { order.push_back(2); });    // also "now"
  });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 100);
  EXPECT_EQ(q.past_clamped(), 1u);
}

TEST_P(EventQueueBackends, ReentrantSchedulingDuringRun) {
  EventQueue q(GetParam());
  int count = 0;
  q.schedule_at(0, [&] {
    ++count;
    if (count < 5) q.schedule_in(10, [&] { ++count; });
  });
  // Chain of events each scheduling one more would need re-arming; here only
  // one extra is scheduled by the first event.
  q.run();
  EXPECT_EQ(count, 2);
}

TEST_P(EventQueueBackends, RunUntilStopsAtDeadline) {
  EventQueue q(GetParam());
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST_P(EventQueueBackends, RunUntilAdvancesClockToDeadlineWhenIdle) {
  EventQueue q(GetParam());
  q.run_until(500);
  EXPECT_EQ(q.now(), 500);
}

TEST_P(EventQueueBackends, RunUntilPreservesTieOrderAcrossCalls) {
  EventQueue q(GetParam());
  std::vector<int> order;
  q.schedule_at(20, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until(10);  // deferred events keep their original sequence numbers
  q.schedule_at(20, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Regression: when run_until popped a past-deadline event (via the calendar's
// full-cycle fallback, which jumps the cursor to that event's window) and
// reinserted it, the cursor was left far in the future. An earlier event
// scheduled afterwards then landed in a bucket behind the cursor and executed
// *after* the far-future one, rewinding the clock. The cursor must rewind to
// now()'s window when run_until defers an event.
TEST_P(EventQueueBackends, EarlierScheduleAfterRunUntilRunsFirst) {
  EventQueue q(GetParam());
  std::vector<Time> fired;
  q.schedule_at(1'000'000, [&] { fired.push_back(q.now()); });
  EXPECT_EQ(q.run_until(1000), 0u);
  EXPECT_EQ(q.now(), 1000);
  q.schedule_at(2000, [&] { fired.push_back(q.now()); });
  q.run();
  // Strictly increasing fire times double as a clock-monotonicity check.
  EXPECT_EQ(fired, (std::vector<Time>{2000, 1'000'000}));
  EXPECT_EQ(q.now(), 1'000'000);
}

TEST_P(EventQueueBackends, ExecutedCounterAccumulates) {
  EventQueue q(GetParam());
  q.schedule_at(1, [] {});
  q.schedule_at(2, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 2u);
  q.schedule_at(3, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 3u);
}

TEST_P(EventQueueBackends, ExecutedBreaksDownByKind) {
  EventQueue q(GetParam());
  const EventQueue::EventFn noop = [](EventQueue&, void*, std::uint64_t,
                                      std::uint64_t) {};
  q.schedule_event_at(1, EventKind::kBgpDelivery, noop, nullptr);
  q.schedule_event_at(2, EventKind::kBgpDelivery, noop, nullptr);
  q.schedule_event_at(3, EventKind::kRfdReuse, noop, nullptr);
  q.schedule_at(4, [] {});
  q.run();
  EXPECT_EQ(q.executed_of(EventKind::kBgpDelivery), 2u);
  EXPECT_EQ(q.executed_of(EventKind::kRfdReuse), 1u);
  EXPECT_EQ(q.executed_of(EventKind::kClosure), 1u);
  EXPECT_EQ(q.executed_of(EventKind::kBeacon), 0u);
  EXPECT_EQ(q.executed(), 4u);
}

TEST_P(EventQueueBackends, TypedEventsReceiveArguments) {
  EventQueue q(GetParam());
  std::uint64_t got_a = 0, got_b = 0;
  struct Ctx {
    std::uint64_t* a;
    std::uint64_t* b;
  } ctx{&got_a, &got_b};
  q.schedule_event_in(5, EventKind::kBeacon,
                      [](EventQueue&, void* c, std::uint64_t a, std::uint64_t b) {
                        auto* out = static_cast<Ctx*>(c);
                        *out->a = a;
                        *out->b = b;
                      },
                      &ctx, 77, 99);
  q.run();
  EXPECT_EQ(got_a, 77u);
  EXPECT_EQ(got_b, 99u);
}

TEST_P(EventQueueBackends, EmptyAndPending) {
  EventQueue q(GetParam());
  EXPECT_TRUE(q.empty());
  q.schedule_at(1, [] {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_TRUE(q.empty());
}

/// Widely spread event times force the calendar to cycle through all buckets
/// and fall back to direct-search; order must survive.
TEST_P(EventQueueBackends, SparseFarApartEventsStayOrdered) {
  EventQueue q(GetParam());
  std::vector<int> order;
  q.schedule_at(hours(500), [&] { order.push_back(3); });
  q.schedule_at(1, [&] { order.push_back(1); });
  q.schedule_at(hours(2), [&] { order.push_back(2); });
  q.schedule_at(hours(5000), [&] { order.push_back(4); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now(), hours(5000));
}

}  // namespace
}  // namespace because::sim
