#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace because::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1), 1000);
  EXPECT_EQ(minutes(1), 60'000);
  EXPECT_EQ(hours(1), 3'600'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(90)), 90.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(7)), 7.0);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(5, [&] { order.push_back(2); });
  q.schedule_at(5, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ClockAdvancesWithEvents) {
  EventQueue q;
  Time seen = -1;
  q.schedule_at(42, [&] { seen = q.now(); });
  q.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(q.now(), 42);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  Time seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(50, [] {}), std::invalid_argument);
}

TEST(EventQueue, ReentrantSchedulingDuringRun) {
  EventQueue q;
  int count = 0;
  q.schedule_at(0, [&] {
    ++count;
    if (count < 5) q.schedule_in(10, [&] { ++count; });
  });
  // Chain of events each scheduling one more would need re-arming; here only
  // one extra is scheduled by the first event.
  q.run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockToDeadlineWhenIdle) {
  EventQueue q;
  q.run_until(500);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, ExecutedCounterAccumulates) {
  EventQueue q;
  q.schedule_at(1, [] {});
  q.schedule_at(2, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 2u);
  q.schedule_at(3, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, EmptyAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule_at(1, [] {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace because::sim
