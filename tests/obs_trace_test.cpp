// Golden trace-export lock for the obs subsystem (ctest label: obs).
//
// The golden campaign from sim_golden_trace_test runs with metrics and
// tracing fully enabled; the rendered Chrome-trace JSON is reduced to an
// FNV-1a digest over its bytes. The expected constants below were captured
// when the subsystem landed. Two properties are pinned at once: the exporter
// output is stable (event set, merge order, JSON shape), and enabling
// instrumentation does not perturb the simulation — the campaign must still
// reproduce the seed engine's event count, record count and update digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/campaign.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace because {
namespace {

std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a_bytes(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Same reduction as sim_golden_trace_test: the collector update stream.
std::uint64_t digest_store(const collector::UpdateStore& store) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const collector::RecordedUpdate& rec : store.all()) {
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.recorded_at));
    hash = fnv1a_u64(hash, rec.vp);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.type));
    hash = fnv1a_u64(hash, (static_cast<std::uint64_t>(rec.update.prefix.id) << 8) |
                               rec.update.prefix.length);
    hash = fnv1a_u64(hash, static_cast<std::uint64_t>(rec.update.beacon_timestamp));
    const auto path = store.path_of(rec);
    hash = fnv1a_u64(hash, path.size());
    for (topology::AsId as : path) hash = fnv1a_u64(hash, as);
  }
  return hash;
}

experiment::CampaignConfig golden_config() {
  experiment::CampaignConfig config = experiment::CampaignConfig::small();
  config.pairs = 2;
  config.burst_length = sim::minutes(12);
  config.break_length = sim::minutes(50);
  config.anchor_cycles = 1;
  config.background_prefixes = 4;
  config.session_resets = 2;
  config.seed = 7;
  return config;
}

struct ObsGuard {
  ObsGuard() {
    obs::set_enabled(true);
    obs::reset();
    obs::set_trace_enabled(true);
    obs::trace_reset();
  }
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset();
    obs::set_trace_enabled(false);
    obs::trace_reset();
  }
};

// Seed-engine constants from sim_golden_trace_test — the instrumented run
// must reproduce them exactly.
constexpr std::uint64_t kExpectedEvents = 155320;
constexpr std::uint64_t kExpectedRecords = 18165;
constexpr std::uint64_t kExpectedDigest = 1359638636144856509ULL;

// Captured when the obs subsystem landed: event count and byte digest of
// the rendered Chrome-trace JSON for the golden campaign.
constexpr std::uint64_t kExpectedTraceEvents = 437;
constexpr std::uint64_t kExpectedTraceDigest = 17687340896761361811ULL;

TEST(ObsGoldenTrace, InstrumentedCampaignMatchesSeedEngine) {
  ObsGuard guard;
  const experiment::CampaignResult result =
      experiment::run_campaign(golden_config());
  EXPECT_EQ(result.events_executed, kExpectedEvents);
  EXPECT_EQ(result.store.size(), kExpectedRecords);
  EXPECT_EQ(digest_store(result.store), kExpectedDigest);

  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  const std::string json = obs::render_chrome_trace(events);
  EXPECT_EQ(events.size(), kExpectedTraceEvents);
  EXPECT_EQ(fnv1a_bytes(json), kExpectedTraceDigest)
      << "trace JSON digest changed; events=" << events.size()
      << " digest=" << fnv1a_bytes(json);
}

TEST(ObsGoldenTrace, TraceExportReproducibleAcrossRuns) {
  std::string first;
  for (int round = 0; round < 2; ++round) {
    ObsGuard guard;
    experiment::run_campaign(golden_config());
    const std::string json = obs::render_chrome_trace(obs::trace_snapshot());
    if (round == 0)
      first = json;
    else
      EXPECT_EQ(json, first);
  }
}

TEST(ObsGoldenTrace, MetricsCoverEveryInstrumentedSubsystem) {
  ObsGuard guard;
  {
    // The result owns the collector's PathTable, whose dedup counters flush
    // at destruction — drop it before snapshotting.
    const experiment::CampaignResult result =
        experiment::run_campaign(golden_config());
  }
  const obs::MetricsSnapshot snap = obs::snapshot();
  auto value = [&snap](std::string_view name) -> std::uint64_t {
    for (const auto& row : snap.counters)
      if (row.name == name) return row.value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  // Engine: every executed event was counted, by kind, and the queue-depth
  // histogram saw one sample per pop.
  EXPECT_EQ(value("campaign.events"), kExpectedEvents);
  EXPECT_GT(value("sim.events.bgp_delivery"), 0u);
  EXPECT_GT(value("sim.events.beacon"), 0u);
  EXPECT_GT(value("sim.schedules"), 0u);
  ASSERT_EQ(snap.histograms.size(), obs::kHistoCount);
  EXPECT_EQ(snap.histograms[0].total, kExpectedEvents);
  // BGP plane.
  EXPECT_GT(value("bgp.announcements_sent"), 0u);
  EXPECT_GT(value("bgp.updates_received"), 0u);
  EXPECT_GT(value("bgp.adj_rib_in.memo_hits"), 0u);
  EXPECT_GT(value("bgp.paths.dedup_hits"), 0u);
  EXPECT_EQ(value("campaign.cells"), 1u);
}

}  // namespace
}  // namespace because
