#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bgp/session.hpp"
#include "sim/event_queue.hpp"

namespace because::bgp {
namespace {

using topology::Relation;

const Prefix kPrefix{1, 24};

topology::PathTable& table() {
  static topology::PathTable paths;
  return paths;
}

Update announce(sim::Time ts, const topology::AsPath& path = {1, 2}) {
  Update u;
  u.type = UpdateType::kAnnouncement;
  u.prefix = kPrefix;
  u.path = table().intern(path);
  u.beacon_timestamp = ts;
  return u;
}

Update withdraw() {
  Update u;
  u.type = UpdateType::kWithdrawal;
  u.prefix = kPrefix;
  return u;
}

struct Fixture {
  sim::EventQueue queue;
  std::vector<std::pair<sim::Time, Update>> sent;
  Session session{1, 2, Relation::kCustomer, sim::seconds(30), false,
                  [this](const Update& u) { sent.emplace_back(queue.now(), u); }};
};

TEST(Session, FirstAnnouncementImmediate) {
  Fixture f;
  f.session.submit(announce(100), f.queue);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_TRUE(f.session.advertised(kPrefix));
}

TEST(Session, MraiDelaysSecondAnnouncement) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::seconds(10),
                      [&] { f.session.submit(announce(10), f.queue); });
  f.queue.run();
  ASSERT_EQ(f.sent.size(), 2u);
  EXPECT_EQ(f.sent[0].first, 0);
  EXPECT_EQ(f.sent[1].first, sim::seconds(30));  // held until MRAI expiry
}

TEST(Session, PendingKeepsOnlyNewest) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::seconds(5),
                      [&] { f.session.submit(announce(5), f.queue); });
  f.queue.schedule_at(sim::seconds(10),
                      [&] { f.session.submit(announce(10), f.queue); });
  f.queue.run();
  ASSERT_EQ(f.sent.size(), 2u);
  EXPECT_EQ(f.sent[1].second.beacon_timestamp, 10);  // only the latest flushed
}

TEST(Session, WithdrawalBypassesMrai) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::seconds(5), [&] { f.session.submit(withdraw(), f.queue); });
  f.queue.run();
  ASSERT_EQ(f.sent.size(), 2u);
  EXPECT_EQ(f.sent[1].first, sim::seconds(5));
  EXPECT_TRUE(f.sent[1].second.is_withdrawal());
  EXPECT_FALSE(f.session.advertised(kPrefix));
}

TEST(Session, WithdrawalSupersedesPendingAnnouncement) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::seconds(5),
                      [&] { f.session.submit(announce(5), f.queue); });
  f.queue.schedule_at(sim::seconds(6), [&] { f.session.submit(withdraw(), f.queue); });
  f.queue.run();
  // A(0) immediate, W at 6s; the pending A(5) must never surface.
  ASSERT_EQ(f.sent.size(), 2u);
  EXPECT_TRUE(f.sent[1].second.is_withdrawal());
  for (const auto& [_, u] : f.sent) EXPECT_NE(u.beacon_timestamp, 5);
}

TEST(Session, DuplicateAnnouncementElided) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::minutes(5),
                      [&] { f.session.submit(announce(0), f.queue); });
  f.queue.run();
  EXPECT_EQ(f.sent.size(), 1u);
}

TEST(Session, NewTimestampIsNotDuplicate) {
  // Announcements differing only in the beacon timestamp are attribute
  // changes and must propagate.
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::minutes(5),
                      [&] { f.session.submit(announce(7), f.queue); });
  f.queue.run();
  EXPECT_EQ(f.sent.size(), 2u);
}

TEST(Session, WithdrawalWithoutAdvertisementElided) {
  Fixture f;
  f.session.submit(withdraw(), f.queue);
  EXPECT_TRUE(f.sent.empty());
}

TEST(Session, DoubleWithdrawalElided) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::seconds(1), [&] { f.session.submit(withdraw(), f.queue); });
  f.queue.schedule_at(sim::seconds(2), [&] { f.session.submit(withdraw(), f.queue); });
  f.queue.run();
  EXPECT_EQ(f.sent.size(), 2u);
}

TEST(Session, MraiAppliesToWithdrawalsWhenConfigured) {
  sim::EventQueue queue;
  std::vector<std::pair<sim::Time, Update>> sent;
  Session session{1, 2, Relation::kCustomer, sim::seconds(30), true,
                  [&](const Update& u) { sent.emplace_back(queue.now(), u); }};
  queue.schedule_at(0, [&] { session.submit(announce(0), queue); });
  queue.schedule_at(sim::seconds(5), [&] { session.submit(withdraw(), queue); });
  queue.run();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].first, sim::seconds(30));
}

TEST(Session, FlushedPendingEqualToAdvertisedIsSkipped) {
  // A(ts=0) sent, then A(ts=1) goes pending, then A(ts=0)... the pending
  // slot ends holding A(ts=0), equal to what was already delivered.
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.schedule_at(sim::seconds(5),
                      [&] { f.session.submit(announce(1), f.queue); });
  f.queue.schedule_at(sim::seconds(6),
                      [&] { f.session.submit(announce(0), f.queue); });
  f.queue.run();
  EXPECT_EQ(f.sent.size(), 1u);
}

TEST(Session, ResetForgetsAdvertisedState) {
  Fixture f;
  f.queue.schedule_at(0, [&] { f.session.submit(announce(0), f.queue); });
  f.queue.run();
  ASSERT_EQ(f.sent.size(), 1u);
  f.session.reset();
  EXPECT_FALSE(f.session.advertised(kPrefix));
  f.queue.schedule_at(sim::minutes(10),
                      [&] { f.session.submit(announce(0), f.queue); });
  f.queue.run();
  EXPECT_EQ(f.sent.size(), 2u);  // re-sent despite identical content
}

TEST(Session, UpdatesSentCounter) {
  Fixture f;
  f.session.submit(announce(0), f.queue);
  f.session.submit(withdraw(), f.queue);
  EXPECT_EQ(f.session.updates_sent(), 2u);
}

TEST(Session, RejectsBadConstruction) {
  sim::EventQueue queue;
  EXPECT_THROW(Session(1, 2, Relation::kPeer, sim::seconds(30), false, nullptr),
               std::invalid_argument);
  EXPECT_THROW(Session(1, 2, Relation::kPeer, -1, false, [](const Update&) {}),
               std::invalid_argument);
}

TEST(Session, AccessorsReflectConstruction) {
  Fixture f;
  EXPECT_EQ(f.session.remote(), 2u);
  EXPECT_EQ(f.session.relation(), Relation::kCustomer);
}

TEST(Session, JitteredMraiStaysWithinBounds) {
  sim::EventQueue queue;
  stats::Rng rng(11);
  std::vector<sim::Time> sent_at;
  Session session{1, 2, Relation::kCustomer, sim::seconds(30), false,
                  [&](const Update&) { sent_at.push_back(queue.now()); },
                  &rng, 0.5};
  // A fresh announcement every second; MRAI coalesces them into windows of
  // 15-30 s.
  for (int i = 0; i < 120; ++i) {
    queue.schedule_at(sim::seconds(i), [&session, &queue, i] {
      Update u;
      u.type = UpdateType::kAnnouncement;
      u.prefix = kPrefix;
      u.path = table().intern(topology::AsPath{1, 2});
      u.beacon_timestamp = sim::seconds(i);
      session.submit(u, queue);
    });
  }
  queue.run();
  ASSERT_GE(sent_at.size(), 3u);
  for (std::size_t k = 1; k < sent_at.size(); ++k) {
    const sim::Duration gap = sent_at[k] - sent_at[k - 1];
    EXPECT_GE(gap, sim::seconds(15) - sim::seconds(1));
    EXPECT_LE(gap, sim::seconds(30) + sim::seconds(1));
  }
}

TEST(Session, JitterVariesAcrossWindows) {
  sim::EventQueue queue;
  stats::Rng rng(13);
  std::vector<sim::Time> sent_at;
  Session session{1, 2, Relation::kCustomer, sim::seconds(30), false,
                  [&](const Update&) { sent_at.push_back(queue.now()); },
                  &rng, 0.5};
  for (int i = 0; i < 600; ++i) {
    queue.schedule_at(sim::seconds(i), [&session, &queue, i] {
      Update u;
      u.type = UpdateType::kAnnouncement;
      u.prefix = kPrefix;
      u.path = table().intern(topology::AsPath{1, 2});
      u.beacon_timestamp = sim::seconds(i);
      session.submit(u, queue);
    });
  }
  queue.run();
  ASSERT_GE(sent_at.size(), 6u);
  std::set<sim::Duration> gaps;
  for (std::size_t k = 1; k < sent_at.size(); ++k)
    gaps.insert(sent_at[k] - sent_at[k - 1]);
  EXPECT_GT(gaps.size(), 2u);  // windows actually vary
}

TEST(Session, RejectsBadJitter) {
  sim::EventQueue queue;
  stats::Rng rng(1);
  EXPECT_THROW(Session(1, 2, Relation::kPeer, sim::seconds(30), false,
                       [](const Update&) {}, &rng, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace because::bgp
