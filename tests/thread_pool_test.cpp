// ThreadPool semantics (results, exception propagation, shutdown) and the
// pooled multi-chain / sharded-gradient determinism guarantees built on it:
// the same seed must give bit-identical results whether the work runs on a
// 1-thread or a 4-thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/hmc.hpp"
#include "core/likelihood.hpp"
#include "core/metropolis.hpp"
#include "core/multichain.hpp"
#include "core/prior.hpp"
#include "stats/rng.hpp"
#include "util/thread_pool.hpp"

namespace because {
namespace {

labeling::PathDataset small_dataset(std::size_t ases = 12,
                                    std::size_t paths = 60) {
  stats::Rng rng(17);
  labeling::PathDataset data;
  for (std::size_t j = 0; j < paths; ++j) {
    topology::AsPath path;
    const std::size_t len = 2 + rng.index(4);
    for (std::size_t k = 0; k < len; ++k)
      path.push_back(static_cast<topology::AsId>(1 + rng.index(ases)));
    data.add_path(path, rng.bernoulli(0.35));
  }
  return data;
}

bool chains_identical(const core::Chain& a, const core::Chain& b) {
  if (a.dim() != b.dim() || a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    const auto sa = a.sample(t);
    const auto sb = b.sample(t);
    for (std::size_t i = 0; i < a.dim(); ++i)
      if (sa[i] != sb[i]) return false;  // bit-identical, not approximate
  }
  return true;
}

TEST(ThreadPool, SubmitReturnsResults) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  util::ThreadPool pool(1);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker must survive a throwing task.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, RunsAllTasksOnSingleWorker) {
  util::ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, HardwareThreadsHasFloorOfOne) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1u);
}

TEST(MultiChainPooled, MetropolisIdenticalAcrossPoolSizes) {
  const auto data = small_dataset();
  const core::Likelihood lik(data);
  const core::Prior prior = core::Prior::uniform();
  core::MetropolisConfig config;
  config.samples = 40;
  config.burn_in = 10;
  config.thin = 1;
  config.seed = 99;

  util::ThreadPool pool1(1), pool4(4);
  const auto r1 = core::run_metropolis_chains(lik, prior, config, 3, &pool1);
  const auto r4 = core::run_metropolis_chains(lik, prior, config, 3, &pool4);

  ASSERT_EQ(r1.chains.size(), 3u);
  ASSERT_EQ(r4.chains.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_TRUE(chains_identical(r1.chains[c], r4.chains[c])) << "chain " << c;
  EXPECT_TRUE(chains_identical(r1.pooled, r4.pooled));
  ASSERT_EQ(r1.rhat.size(), r4.rhat.size());
  for (std::size_t i = 0; i < r1.rhat.size(); ++i)
    EXPECT_EQ(r1.rhat[i], r4.rhat[i]) << "coordinate " << i;
}

TEST(MultiChainPooled, HmcIdenticalAcrossPoolSizes) {
  const auto data = small_dataset();
  const core::Likelihood lik(data);
  const core::Prior prior = core::Prior::uniform();
  core::HmcConfig config;
  config.samples = 15;
  config.burn_in = 5;
  config.leapfrog_steps = 8;
  config.seed = 5;

  util::ThreadPool pool1(1), pool4(4);
  const auto r1 = core::run_hmc_chains(lik, prior, config, 2, &pool1);
  const auto r4 = core::run_hmc_chains(lik, prior, config, 2, &pool4);

  ASSERT_EQ(r1.chains.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_TRUE(chains_identical(r1.chains[c], r4.chains[c])) << "chain " << c;
  EXPECT_TRUE(chains_identical(r1.pooled, r4.pooled));
}

TEST(MultiChainPooled, InvalidConfigThrowsInsteadOfTerminating) {
  const auto data = small_dataset();
  const core::Likelihood lik(data);
  const core::Prior prior = core::Prior::uniform();
  core::MetropolisConfig config;
  config.samples = 0;  // rejected inside the chain body
  EXPECT_THROW(core::run_metropolis_chains(lik, prior, config, 3),
               std::invalid_argument);
  EXPECT_THROW(core::run_metropolis_chains(lik, prior, config, 1),
               std::invalid_argument);  // n_chains < 2
}

TEST(ShardedGradient, MatchesSerialAndIsPoolSizeInvariant) {
  const auto data = small_dataset(20, 200);
  const core::Likelihood lik(data);
  stats::Rng rng(3);
  std::vector<double> p(lik.dim());
  for (double& x : p) x = rng.uniform();

  std::vector<double> serial(lik.dim());
  lik.gradient(p, serial);

  util::ThreadPool pool1(1), pool4(4);
  for (std::size_t shards : {1u, 2u, 3u, 7u}) {
    std::vector<double> g1(lik.dim()), g4(lik.dim());
    lik.gradient(p, g1, pool1, shards);
    lik.gradient(p, g4, pool4, shards);
    for (std::size_t i = 0; i < lik.dim(); ++i) {
      // Same shard count => same reduction order => bit-identical.
      EXPECT_EQ(g1[i], g4[i]) << "shards " << shards << " coord " << i;
      EXPECT_NEAR(g1[i], serial[i],
                  1e-12 * std::max(1.0, std::abs(serial[i])))
          << "shards " << shards << " coord " << i;
    }
  }
}

TEST(ShardedGradient, HmcWithShardsMatchesSingleShard) {
  const auto data = small_dataset();
  const core::Likelihood lik(data);
  const core::Prior prior = core::Prior::uniform();
  core::HmcConfig config;
  config.samples = 10;
  config.burn_in = 2;
  config.leapfrog_steps = 5;
  config.seed = 8;

  const core::Chain serial = core::run_hmc(lik, prior, config);
  util::ThreadPool pool(2);
  config.gradient_shards = 3;
  const core::Chain sharded = core::run_hmc(lik, prior, config, &pool);
  // Sharded reduction reorders floating-point sums, so samples are only
  // statistically equivalent — but shapes and finiteness must hold.
  ASSERT_EQ(sharded.dim(), serial.dim());
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t t = 0; t < sharded.size(); ++t)
    for (double v : sharded.sample(t)) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
}

TEST(MetropolisGuards, ReflectIntoUnitHandlesNonFiniteInput) {
  // A non-finite proposal must come back as NaN (so the sweep rejects it)
  // instead of spinning forever in the reflection loop.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(core::detail::reflect_into_unit(inf)));
  EXPECT_TRUE(std::isnan(core::detail::reflect_into_unit(-inf)));
  EXPECT_TRUE(std::isnan(core::detail::reflect_into_unit(nan)));
  // Finite values still reflect as before.
  EXPECT_DOUBLE_EQ(core::detail::reflect_into_unit(0.4), 0.4);
  EXPECT_DOUBLE_EQ(core::detail::reflect_into_unit(-0.25), 0.25);
  EXPECT_DOUBLE_EQ(core::detail::reflect_into_unit(1.3), 0.7);
  EXPECT_DOUBLE_EQ(core::detail::reflect_into_unit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(core::detail::reflect_into_unit(1.0), 1.0);
  EXPECT_DOUBLE_EQ(core::detail::reflect_into_unit(-2.6), 0.6);
}

}  // namespace
}  // namespace because
