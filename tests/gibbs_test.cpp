#include <gtest/gtest.h>

#include "core/gibbs.hpp"
#include "core/metropolis.hpp"

namespace because::core {
namespace {

labeling::PathDataset planted_dataset(int copies) {
  labeling::PathDataset d;
  for (int i = 0; i < copies; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({10, 30}, true);
    d.add_path({20, 30}, false);
    d.add_path({30, 40}, false);
  }
  return d;
}

TEST(Gibbs, RecoversPlantedDamper) {
  const auto data = planted_dataset(10);
  const Likelihood lik(data);
  GibbsConfig config;
  config.samples = 500;
  config.burn_in = 100;
  config.seed = 1;
  const Chain chain = run_gibbs(lik, Prior::uniform(), config);
  EXPECT_GT(chain.mean(*data.index_of(10)), 0.8);
  EXPECT_LT(chain.mean(*data.index_of(20)), 0.2);
  EXPECT_LT(chain.mean(*data.index_of(30)), 0.2);
}

TEST(Gibbs, SamplesStayInUnitInterval) {
  const auto data = planted_dataset(3);
  const Likelihood lik(data);
  GibbsConfig config;
  config.samples = 200;
  config.burn_in = 50;
  config.seed = 2;
  const Chain chain = run_gibbs(lik, Prior::uniform(), config);
  for (std::size_t t = 0; t < chain.size(); ++t)
    for (double x : chain.sample(t)) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
}

TEST(Gibbs, AgreesWithMetropolis) {
  const auto data = planted_dataset(8);
  const Likelihood lik(data);

  GibbsConfig gibbs_config;
  gibbs_config.samples = 600;
  gibbs_config.burn_in = 150;
  gibbs_config.seed = 3;
  const Chain gibbs_chain = run_gibbs(lik, Prior::uniform(), gibbs_config);

  MetropolisConfig mh_config;
  mh_config.samples = 2000;
  mh_config.burn_in = 600;
  mh_config.seed = 4;
  const Chain mh_chain = run_metropolis(lik, Prior::uniform(), mh_config);

  for (std::size_t i = 0; i < data.as_count(); ++i)
    EXPECT_NEAR(gibbs_chain.mean(i), mh_chain.mean(i), 0.1)
        << "AS " << data.as_at(i);
}

TEST(Gibbs, DeterministicForSeed) {
  const auto data = planted_dataset(2);
  const Likelihood lik(data);
  GibbsConfig config;
  config.samples = 50;
  config.burn_in = 20;
  config.seed = 5;
  const Chain a = run_gibbs(lik, Prior::uniform(), config);
  const Chain b = run_gibbs(lik, Prior::uniform(), config);
  for (std::size_t t = 0; t < a.size(); t += 7)
    for (std::size_t i = 0; i < a.dim(); ++i)
      EXPECT_DOUBLE_EQ(a.sample(t)[i], b.sample(t)[i]);
}

TEST(Gibbs, RespectsInformativePriorWithoutData) {
  // Single AS on no informative paths... use an AS on one ambiguous path
  // pair so the prior dominates.
  labeling::PathDataset d;
  d.add_path({10, 99}, true);
  d.add_path({10}, true);  // 10 explains everything; 99 has no information
  const Likelihood lik(d);
  GibbsConfig config;
  config.samples = 800;
  config.burn_in = 200;
  config.seed = 6;
  const Chain chain = run_gibbs(lik, Prior::beta(2.0, 6.0), config);
  // 99's marginal should hug the Beta(2,6) prior mean 0.25.
  EXPECT_NEAR(chain.mean(*d.index_of(99)), 0.25, 0.12);
}

TEST(Gibbs, ConfigValidation) {
  const auto data = planted_dataset(1);
  const Likelihood lik(data);
  GibbsConfig config;
  config.samples = 0;
  EXPECT_THROW(run_gibbs(lik, Prior::uniform(), config), std::invalid_argument);
  config = GibbsConfig{};
  config.grid_points = 1;
  EXPECT_THROW(run_gibbs(lik, Prior::uniform(), config), std::invalid_argument);
  config = GibbsConfig{};
  config.thin = 0;
  EXPECT_THROW(run_gibbs(lik, Prior::uniform(), config), std::invalid_argument);
}

}  // namespace
}  // namespace because::core
