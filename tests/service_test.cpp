#include <gtest/gtest.h>

#include <string>

#include "experiment/campaign.hpp"
#include "service/daemon.hpp"

namespace because::service {
namespace {

/// One small campaign shared by all tests in this file (running it is the
/// expensive part; every daemon here replays its update stream).
const experiment::CampaignResult& shared_campaign() {
  static const experiment::CampaignResult result = [] {
    experiment::CampaignConfig config = experiment::CampaignConfig::small();
    config.seed = 4242;
    return run_campaign(config);
  }();
  return result;
}

ServiceConfig test_config() { return ServiceConfig::fast(); }

/// A daemon loaded with the shared campaign and its full update stream.
std::unique_ptr<Daemon> loaded_daemon(Clock* clock = nullptr) {
  auto daemon =
      std::make_unique<Daemon>(test_config(), /*pool=*/nullptr, clock);
  daemon->load_campaign(shared_campaign());
  daemon->replay(shared_campaign().store);
  return daemon;
}

bgp::Prefix beacon_prefix(std::size_t index = 0) {
  return shared_campaign().beacons.at(index).prefix;
}

/// A synthetic announcement for `prefix` stamped after every replayed
/// record, so per-VP time monotonicity holds.
StreamUpdate late_update(const bgp::Prefix& prefix) {
  const experiment::CampaignResult& c = shared_campaign();
  sim::Time last = 0;
  for (const collector::RecordedUpdate& r : c.store.all())
    if (r.recorded_at > last) last = r.recorded_at;
  StreamUpdate update;
  update.vp = 0;
  update.recorded_at = last + sim::minutes(1);
  update.type = bgp::UpdateType::kAnnouncement;
  update.prefix = prefix;
  update.beacon_timestamp = last;
  update.path = {c.store.vp(0).as, c.beacons.at(0).site};
  return update;
}

TEST(Service, ReplayIngestsEveryRecord) {
  Daemon daemon(test_config());
  daemon.load_campaign(shared_campaign());
  const std::size_t n = daemon.replay(shared_campaign().store);
  EXPECT_EQ(n, shared_campaign().store.size());
  EXPECT_EQ(daemon.stats().ingested, n);
  EXPECT_GT(n, 0u);
}

TEST(Service, ColdThenCachedQuery) {
  auto daemon = loaded_daemon();
  const bgp::Prefix prefix = beacon_prefix();

  const QueryResult cold = daemon->query(prefix);
  EXPECT_EQ(cold.source, QueryResult::Source::kCold);
  EXPECT_GT(cold.epoch, 0u);
  EXPECT_GT(cold.observations, 0u);
  EXPECT_EQ(cold.summaries.size(), cold.categories.size());

  const QueryResult cached = daemon->query(prefix);
  EXPECT_EQ(cached.source, QueryResult::Source::kCached);
  // Identical answer, byte for byte, modulo the source line.
  EXPECT_EQ(cached.summaries.size(), cold.summaries.size());
  for (std::size_t i = 0; i < cold.summaries.size(); ++i) {
    EXPECT_EQ(cached.summaries[i].as, cold.summaries[i].as);
    EXPECT_EQ(cached.summaries[i].mean, cold.summaries[i].mean);
  }
  EXPECT_EQ(cached.damping, cold.damping);

  const ServiceStats stats = daemon->stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cold_builds, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.refreshes, 0u);
}

TEST(Service, IngestBumpsEpochAndTriggersRefresh) {
  auto daemon = loaded_daemon();
  const bgp::Prefix prefix = beacon_prefix();

  const QueryResult cold = daemon->query(prefix);
  daemon->ingest(late_update(prefix));
  const QueryResult refreshed = daemon->query(prefix);
  EXPECT_EQ(refreshed.source, QueryResult::Source::kRefreshed);
  EXPECT_EQ(refreshed.epoch, cold.epoch + 1);

  const ServiceStats stats = daemon->stats();
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.cold_builds, 1u);
}

TEST(Service, CommitInvalidatesCacheViaConfigEpoch) {
  auto daemon = loaded_daemon();
  const bgp::Prefix prefix = beacon_prefix();
  (void)daemon->query(prefix);

  ServiceConfig next = test_config();
  next.inference.hmc.samples += 10;
  daemon->stage(next);
  EXPECT_TRUE(daemon->has_staged());
  EXPECT_EQ(daemon->validate_staged(), "");
  daemon->commit();
  EXPECT_FALSE(daemon->has_staged());
  EXPECT_EQ(daemon->config_epoch(), 1u);
  EXPECT_EQ(daemon->config().inference.hmc.samples,
            test_config().inference.hmc.samples + 10);

  // The posterior was built under config epoch 0: a post-commit query must
  // pay a full rebuild (warm chains are only carried within one epoch).
  const QueryResult result = daemon->query(prefix);
  EXPECT_EQ(result.source, QueryResult::Source::kCold);
  EXPECT_EQ(result.config_epoch, 1u);
  EXPECT_EQ(daemon->stats().cold_builds, 2u);
  EXPECT_EQ(daemon->stats().reconfig_commits, 1u);
}

TEST(Service, StagedConfigValidationAndAbort) {
  Daemon daemon(test_config());
  EXPECT_EQ(daemon.validate_staged(), "no staged config");

  ServiceConfig bad = test_config();
  bad.pool_chains = 0;
  daemon.stage(bad);
  EXPECT_NE(daemon.validate_staged(), "");

  daemon.abort_staged();
  EXPECT_FALSE(daemon.has_staged());
  EXPECT_EQ(daemon.config_epoch(), 0u);
}

TEST(Service, LruEvictionForcesRebuild) {
  ServiceConfig config = test_config();
  config.hot_prefix_capacity = 2;
  Daemon daemon(config);
  daemon.load_campaign(shared_campaign());
  daemon.replay(shared_campaign().store);

  (void)daemon.query(beacon_prefix(0));
  (void)daemon.query(beacon_prefix(1));
  (void)daemon.query(beacon_prefix(2));  // evicts prefix 0 (LRU)
  const QueryResult again = daemon.query(beacon_prefix(0));
  EXPECT_EQ(again.source, QueryResult::Source::kCold);
  EXPECT_EQ(daemon.stats().cold_builds, 4u);
}

TEST(Service, ShowPosteriorRendersDeterministically) {
  auto daemon = loaded_daemon();
  const bgp::Prefix prefix = beacon_prefix();
  const std::string first =
      daemon->show("show rfd posterior " + bgp::to_string(prefix));
  EXPECT_NE(first.find("prefix " + bgp::to_string(prefix)), std::string::npos);
  EXPECT_NE(first.find("source cold"), std::string::npos);
  const std::string second =
      daemon->show("show rfd posterior " + bgp::to_string(prefix));
  EXPECT_NE(second.find("source cached"), std::string::npos);
  // Everything but the source token is byte-identical.
  std::string a = first, b = second;
  a.replace(a.find("source cold"), 11, "source X");
  b.replace(b.find("source cached"), 13, "source X");
  EXPECT_EQ(a, b);
}

TEST(Service, ShowCampaignStatusAndStats) {
  FixedClock clock(1234567);
  auto daemon = loaded_daemon(&clock);
  const std::string status = daemon->show("show campaign status");
  EXPECT_NE(status.find("vantage-points"), std::string::npos);
  EXPECT_NE(status.find(bgp::to_string(beacon_prefix())), std::string::npos);

  const std::string stats = daemon->show("show service stats");
  EXPECT_NE(stats.find("config-epoch 0"), std::string::npos);
  EXPECT_NE(stats.find("wallclock-unix-ms 1234567"), std::string::npos);

  clock.advance(1000);
  const std::string later = daemon->show("show service stats");
  EXPECT_NE(later.find("wallclock-unix-ms 1235567"), std::string::npos);
}

TEST(Service, ShowRejectsUnknownCommandsAndBadPrefixes) {
  Daemon daemon(test_config());
  EXPECT_EQ(daemon.show("show me the money").substr(0, 1), "%");
  EXPECT_EQ(daemon.show("show rfd posterior pfx").substr(0, 1), "%");
  EXPECT_EQ(daemon.show("show rfd posterior 1/999").substr(0, 1), "%");
  EXPECT_EQ(daemon.show("clear rfd posterior 1").substr(0, 1), "%");
}

TEST(Service, QueryOnUnknownPrefixIsEmptyButWellFormed) {
  auto daemon = loaded_daemon();
  const bgp::Prefix unknown{987654, 24};
  const QueryResult result = daemon->query(unknown);
  EXPECT_EQ(result.source, QueryResult::Source::kCold);
  EXPECT_EQ(result.observations, 0u);
  EXPECT_TRUE(result.summaries.empty());
  EXPECT_TRUE(result.damping.empty());
  // And the render does not choke on the empty posterior.
  const std::string text = render(result);
  EXPECT_NE(text.find("damping: none"), std::string::npos);
}

TEST(ServiceConfigTest, ValidateRejectsBadKnobs) {
  EXPECT_NO_THROW(ServiceConfig::fast().validate());
  ServiceConfig c = ServiceConfig::fast();
  c.pool_chains = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ServiceConfig::fast();
  c.refresh_samples = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ServiceConfig::fast();
  c.hot_prefix_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ServiceConfig::fast();
  c.inference.prior_alpha = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace because::service
