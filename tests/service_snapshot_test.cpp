#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "experiment/campaign.hpp"
#include "service/daemon.hpp"
#include "service/snapshot.hpp"
#include "util/contracts.hpp"

namespace because::service {
namespace {

using because::util::ContractMode;
using because::util::ContractViolation;
using because::util::ScopedContractMode;

const experiment::CampaignResult& shared_campaign() {
  static const experiment::CampaignResult result = [] {
    experiment::CampaignConfig config = experiment::CampaignConfig::small();
    config.seed = 777;
    return run_campaign(config);
  }();
  return result;
}

bgp::Prefix beacon_prefix(std::size_t index = 0) {
  return shared_campaign().beacons.at(index).prefix;
}

std::unique_ptr<Daemon> loaded_daemon() {
  auto daemon = std::make_unique<Daemon>(ServiceConfig::fast());
  daemon->load_campaign(shared_campaign());
  daemon->replay(shared_campaign().store);
  return daemon;
}

TEST(ServiceSnapshot, RoundTripIsByteIdentical) {
  auto daemon = loaded_daemon();
  (void)daemon->query(beacon_prefix(0));
  (void)daemon->query(beacon_prefix(1));

  const std::string first = daemon->save_snapshot();
  Daemon restored{ServiceConfig::fast()};
  restored.restore_snapshot(first);
  const std::string second = restored.save_snapshot();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second);

  // And again through the original daemon: saving is non-destructive.
  EXPECT_TRUE(daemon->save_snapshot() == first);
}

TEST(ServiceSnapshot, RestoredDaemonAnswersFromCache) {
  auto daemon = loaded_daemon();
  const QueryResult before = daemon->query(beacon_prefix());
  const std::string bytes = daemon->save_snapshot();

  Daemon restored{ServiceConfig::fast()};
  restored.restore_snapshot(bytes);
  EXPECT_EQ(restored.stats().snapshot_restores, 1u);
  // The posterior came back warm: same answer, zero MCMC.
  const QueryResult after = restored.query(beacon_prefix());
  EXPECT_EQ(after.source, QueryResult::Source::kCached);
  QueryResult a = before, b = after;
  a.source = b.source = QueryResult::Source::kCached;
  EXPECT_EQ(render(a), render(b));
  EXPECT_EQ(restored.stats().cold_builds, 0u);
}

TEST(ServiceSnapshot, RestoreThenResumeEqualsNeverStopped) {
  const std::size_t half = shared_campaign().store.size() / 2;

  // Daemon A runs straight through: half the stream, a query, the rest of
  // the stream, a refreshing query.
  Daemon a{ServiceConfig::fast()};
  a.load_campaign(shared_campaign());
  a.replay(shared_campaign().store, 0, half);
  (void)a.query(beacon_prefix());
  const std::string mid = a.save_snapshot();
  a.replay(shared_campaign().store, half);
  const std::string answer_a =
      render(a.query(beacon_prefix()));
  const std::string final_a = a.save_snapshot();

  // Daemon B is killed at the midpoint and restored from the snapshot, then
  // sees the identical remainder of the stream.
  Daemon b{ServiceConfig::fast()};
  b.restore_snapshot(mid);
  b.replay(shared_campaign().store, half);
  const std::string answer_b =
      render(b.query(beacon_prefix()));
  const std::string final_b = b.save_snapshot();

  EXPECT_EQ(answer_a, answer_b);
  EXPECT_TRUE(final_a == final_b);
}

TEST(ServiceSnapshot, FileRoundTrip) {
  auto daemon = loaded_daemon();
  (void)daemon->query(beacon_prefix());
  const std::string path =
      testing::TempDir() + "/becaused_roundtrip.snap";
  daemon->save_snapshot_file(path);

  Daemon restored{ServiceConfig::fast()};
  restored.restore_snapshot_file(path);
  EXPECT_TRUE(restored.save_snapshot() == daemon->save_snapshot());
  std::remove(path.c_str());
}

TEST(ServiceSnapshot, RejectsBadMagic) {
  ScopedContractMode guard(ContractMode::kThrow);
  auto daemon = loaded_daemon();
  std::string bytes = daemon->save_snapshot();
  bytes[0] = 'X';
  Daemon victim{ServiceConfig::fast()};
  EXPECT_THROW(victim.restore_snapshot(bytes), ContractViolation);
}

TEST(ServiceSnapshot, RejectsVersionMismatch) {
  ScopedContractMode guard(ContractMode::kThrow);
  auto daemon = loaded_daemon();
  std::string bytes = daemon->save_snapshot();
  // The u32 version follows the 8-byte magic, little-endian.
  bytes[kSnapshotMagic.size()] =
      static_cast<char>(kSnapshotVersion + 1);
  Daemon victim{ServiceConfig::fast()};
  EXPECT_THROW(victim.restore_snapshot(bytes), ContractViolation);
}

TEST(ServiceSnapshot, RejectsTruncation) {
  ScopedContractMode guard(ContractMode::kThrow);
  auto daemon = loaded_daemon();
  (void)daemon->query(beacon_prefix());
  const std::string bytes = daemon->save_snapshot();
  // Chop at several depths: header, config, mid-records, mid-posterior.
  for (const double fraction : {0.5, 0.9, 0.999}) {
    const std::size_t n =
        static_cast<std::size_t>(static_cast<double>(bytes.size()) * fraction);
    Daemon victim{ServiceConfig::fast()};
    EXPECT_THROW(victim.restore_snapshot(bytes.substr(0, n)),
                 ContractViolation)
        << "truncated to " << n << " of " << bytes.size() << " bytes";
  }
  Daemon victim{ServiceConfig::fast()};
  EXPECT_THROW(victim.restore_snapshot(bytes.substr(0, 4)),
               ContractViolation);
}

TEST(ServiceSnapshot, RejectsTrailingGarbage) {
  ScopedContractMode guard(ContractMode::kThrow);
  auto daemon = loaded_daemon();
  std::string bytes = daemon->save_snapshot();
  bytes.push_back('\0');
  Daemon victim{ServiceConfig::fast()};
  EXPECT_THROW(victim.restore_snapshot(bytes), ContractViolation);
}

TEST(ServiceSnapshot, ReaderBoundsCheckedCounts) {
  ScopedContractMode guard(ContractMode::kThrow);
  // A corrupted count field must fail the bounds check up front, not drive
  // a multi-gigabyte allocation.
  SnapshotWriter w;
  w.put_u64(static_cast<std::uint64_t>(-1));
  SnapshotReader r(w.bytes());
  EXPECT_THROW((void)r.get_count(8), ContractViolation);
}

TEST(ServiceSnapshot, SnapshotCarriesConfigAndStagedIsDropped) {
  auto daemon = loaded_daemon();
  ServiceConfig next = ServiceConfig::fast();
  next.inference.hmc.samples += 5;
  daemon->stage(next);
  daemon->commit();
  const std::string bytes = daemon->save_snapshot();

  ServiceConfig other = ServiceConfig::fast();
  other.hot_prefix_capacity = 3;
  Daemon restored{other};
  restored.stage(other);  // staged state must not survive a restore
  restored.restore_snapshot(bytes);
  EXPECT_FALSE(restored.has_staged());
  EXPECT_EQ(restored.config_epoch(), 1u);
  EXPECT_EQ(restored.config().inference.hmc.samples,
            ServiceConfig::fast().inference.hmc.samples + 5);
}

}  // namespace
}  // namespace because::service
