// Generative property tests for the BGP substrate: random topologies and
// random event sequences (originations, withdrawals, session resets, RFD
// configs) must never violate the protocol invariants:
//
//   I1. every selected route's full path is loop-free,
//   I2. every selected route's full path is valley-free,
//   I3. every selected route actually leads to an AS currently originating
//       the prefix,
//   I4. after quiescence with no RFD, reachability equals the Gao-Rexford
//       reachable set computed independently on the graph,
//   I5. the whole run is deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <deque>

#include "bgp/network.hpp"
#include "topology/generator.hpp"
#include "topology/paths.hpp"

namespace because::bgp {
namespace {

using topology::AsGraph;
using topology::AsId;
using topology::Relation;

const Prefix kPrefix{1, 24};

AsGraph random_graph(std::uint64_t seed) {
  topology::GeneratorConfig config;
  config.tier1_count = 3;
  config.transit_count = 12;
  config.stub_count = 25;
  stats::Rng rng(seed);
  return topology::generate(config, rng);
}

/// Ground truth for I4: the set of ASs that can reach `origin` under
/// Gao-Rexford export rules, computed by BFS over route propagation states.
/// A route announcement reaches an AS either "from a customer" (may be
/// re-exported to anyone) or "from a peer/provider" (re-exported only to
/// customers).
std::unordered_set<AsId> gao_rexford_reachable(const AsGraph& graph, AsId origin) {
  std::unordered_set<AsId> customer_route;  // holds a customer/own route
  std::unordered_set<AsId> any_route;
  customer_route.insert(origin);
  any_route.insert(origin);

  std::deque<AsId> frontier{origin};
  while (!frontier.empty()) {
    const AsId current = frontier.front();
    frontier.pop_front();
    const bool exportable_everywhere = customer_route.count(current) != 0;
    for (const topology::Neighbor& nb : graph.neighbors(current)) {
      // `current` exports to nb iff the route is its own/customer route, or
      // nb is a customer.
      const bool to_customer = nb.relation == Relation::kCustomer;
      if (!exportable_everywhere && !to_customer) continue;
      // At nb, the route arrives from `current`, whose relationship as seen
      // from nb is reverse(nb.relation).
      const bool arrives_from_customer = nb.relation == Relation::kCustomer
                                             ? false
                                             : reverse(nb.relation) ==
                                                   Relation::kCustomer;
      bool changed = false;
      if (any_route.insert(nb.id).second) changed = true;
      if (arrives_from_customer && customer_route.insert(nb.id).second)
        changed = true;
      if (changed) frontier.push_back(nb.id);
    }
  }
  return any_route;
}

struct RunResult {
  std::vector<std::pair<AsId, topology::AsPath>> selected;  // full paths
  std::unordered_set<AsId> have_route;
  std::uint64_t events = 0;
};

RunResult run_random_scenario(const AsGraph& graph, std::uint64_t seed,
                              bool with_rfd, bool end_announced) {
  sim::EventQueue queue;
  stats::Rng rng(seed);
  Network net(graph, NetworkConfig{}, queue, rng);

  const auto ids = graph.as_ids();
  const AsId origin = ids[rng.index(ids.size())];

  if (with_rfd) {
    // A couple of random dampers (never the origin).
    stats::Rng damp_rng = rng.fork();
    for (int k = 0; k < 3; ++k) {
      const AsId damper = ids[damp_rng.index(ids.size())];
      if (damper == origin) continue;
      DampingRule rule;
      rule.params = rfd::cisco_defaults();
      net.router(damper).add_damping_rule(rule);
    }
  }

  // Random flapping plus session resets.
  sim::Time t = 0;
  Router& origin_router = net.router(origin);
  for (int k = 0; k < 12; ++k) {
    const sim::Time when = t;
    if (k % 2 == 0) {
      queue.schedule_at(when, [&origin_router, when] {
        origin_router.originate(kPrefix, when);
      });
    } else {
      queue.schedule_at(when,
                        [&origin_router] { origin_router.withdraw_origin(kPrefix); });
    }
    t += sim::minutes(rng.uniform_int(1, 5));
  }
  // End state: announced (or withdrawn).
  if (end_announced) {
    const sim::Time when = t;
    queue.schedule_at(when, [&origin_router, when] {
      origin_router.originate(kPrefix, when);
    });
  }
  // Random session resets mid-run.
  stats::Rng reset_rng = rng.fork();
  for (int k = 0; k < 2; ++k) {
    const AsId a = ids[reset_rng.index(ids.size())];
    const auto& nbrs = graph.neighbors(a);
    if (nbrs.empty()) continue;
    const AsId b = nbrs[reset_rng.index(nbrs.size())].id;
    queue.schedule_at(sim::minutes(reset_rng.uniform_int(1, 30)),
                      [&net, a, b] { net.reset_session(a, b); });
  }

  queue.run();  // quiescence: all timers (MRAI, RFD releases) drained

  RunResult result;
  result.events = queue.executed();
  for (AsId as : ids) {
    const Selected* sel = net.router(as).loc_rib().find(kPrefix);
    if (sel == nullptr) continue;
    result.have_route.insert(as);
    topology::AsPath full{as};
    const auto span = net.paths()->span(sel->route.path);
    full.insert(full.end(), span.begin(), span.end());
    result.selected.emplace_back(as, std::move(full));
  }
  return result;
}

class BgpInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpInvariantSweep, SelectedPathsAreLoopAndValleyFree) {
  const AsGraph graph = random_graph(GetParam());
  const RunResult result = run_random_scenario(graph, GetParam() * 31 + 7,
                                               /*with_rfd=*/true,
                                               /*end_announced=*/true);
  for (const auto& [as, path] : result.selected) {
    EXPECT_FALSE(topology::has_loop(path)) << "AS " << as;           // I1
    EXPECT_TRUE(topology::is_valley_free(graph, path)) << "AS " << as;  // I2
  }
}

TEST_P(BgpInvariantSweep, RoutesLeadToTheOrigin) {
  const AsGraph graph = random_graph(GetParam());
  const RunResult result = run_random_scenario(graph, GetParam() * 17 + 3,
                                               /*with_rfd=*/true,
                                               /*end_announced=*/true);
  if (result.selected.empty()) return;
  // All selected paths must end at the same origin AS (I3): the only AS
  // ever originating kPrefix.
  const AsId origin = result.selected.front().second.back();
  for (const auto& [as, path] : result.selected)
    EXPECT_EQ(path.back(), origin) << "AS " << as;
  EXPECT_TRUE(result.have_route.count(origin));
}

TEST_P(BgpInvariantSweep, WithdrawnEndStateLeavesNoRoutes) {
  const AsGraph graph = random_graph(GetParam());
  const RunResult result = run_random_scenario(graph, GetParam() * 13 + 1,
                                               /*with_rfd=*/false,
                                               /*end_announced=*/false);
  EXPECT_TRUE(result.have_route.empty());
}

TEST_P(BgpInvariantSweep, QuiescentReachabilityMatchesGaoRexford) {
  // Without RFD, after quiescence every AS in the Gao-Rexford reachable set
  // (and no other) holds a route (I4).
  const AsGraph graph = random_graph(GetParam());
  const std::uint64_t seed = GetParam() * 7 + 5;

  sim::EventQueue queue;
  stats::Rng rng(seed);
  Network net(graph, NetworkConfig{}, queue, rng);
  const auto ids = graph.as_ids();
  const AsId origin = ids[rng.index(ids.size())];
  net.router(origin).originate(kPrefix, 0);
  queue.run();

  const auto expected = gao_rexford_reachable(graph, origin);
  for (AsId as : ids) {
    const bool has = net.router(as).loc_rib().find(kPrefix) != nullptr;
    EXPECT_EQ(has, expected.count(as) != 0) << "AS " << as;
  }
}

TEST_P(BgpInvariantSweep, DeterministicForSeed) {
  const AsGraph graph = random_graph(GetParam());
  const RunResult a = run_random_scenario(graph, GetParam() * 3 + 11, true, true);
  const RunResult b = run_random_scenario(graph, GetParam() * 3 + 11, true, true);
  EXPECT_EQ(a.events, b.events);  // I5
  ASSERT_EQ(a.selected.size(), b.selected.size());
  for (std::size_t i = 0; i < a.selected.size(); ++i) {
    EXPECT_EQ(a.selected[i].first, b.selected[i].first);
    EXPECT_EQ(a.selected[i].second, b.selected[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpInvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace because::bgp
