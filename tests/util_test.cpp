#include <gtest/gtest.h>

#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace because::util {
namespace {

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, ","), ""); }

TEST(Strings, JoinSingle) { EXPECT_EQ(join({"a"}, ","), "a"); }

TEST(Strings, JoinMultiple) { EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c"); }

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyTokens) {
  const auto parts = split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(Strings, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.125, 1), "12.5%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foo", "foobar"));
  EXPECT_TRUE(starts_with("foo", ""));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render("demo");
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, RendersCsvWithQuoting) {
  Table t({"k", "v"});
  t.add_row({"a,b", "1"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Log, LevelFiltering) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info() << "should be dropped silently";
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace because::util
