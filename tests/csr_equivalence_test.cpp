// Equivalence of the CSR-flattened likelihood kernels against a straight
// reference implementation of Eq. 4-5 (the pre-refactor vector-of-vectors
// walk), on randomized datasets, with and without the §7.2 noise model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/likelihood.hpp"
#include "stats/rng.hpp"

namespace because::core {
namespace {

struct ReferenceData {
  std::vector<std::vector<std::size_t>> paths;  // dense node indices
  std::vector<bool> labels;
};

/// Build a random dataset twice: once as the CSR PathDataset, once as the
/// plain nested-vector layout the reference kernels walk.
struct RandomCase {
  labeling::PathDataset data;
  ReferenceData ref;
};

RandomCase random_case(std::size_t ases, std::size_t paths, std::uint64_t seed) {
  stats::Rng rng(seed);
  RandomCase out;
  for (std::size_t j = 0; j < paths; ++j) {
    const std::size_t len = 1 + rng.index(6);
    topology::AsPath path;
    for (std::size_t k = 0; k < len; ++k)
      path.push_back(static_cast<topology::AsId>(100 + rng.index(ases)));
    const bool shows = rng.bernoulli(0.4);
    const std::size_t before = out.data.path_count();
    out.data.add_path(path, shows);
    if (out.data.path_count() == before) continue;  // empty after dedup: never here
    std::vector<std::size_t> nodes;
    for (topology::AsId as : path) {
      const std::size_t idx = *out.data.index_of(as);
      if (std::find(nodes.begin(), nodes.end(), idx) == nodes.end())
        nodes.push_back(idx);
    }
    out.ref.paths.push_back(std::move(nodes));
    out.ref.labels.push_back(shows);
  }
  return out;
}

std::vector<double> random_p(std::size_t dim, stats::Rng& rng) {
  std::vector<double> p(dim);
  for (double& x : p) x = rng.uniform();
  return p;
}

double ref_obs_log_lik(double prod, bool shows, const NoiseModel& noise) {
  const double fs = noise.false_signature;
  const double ms = noise.missed_signature;
  const double prob = shows ? fs * prod + (1.0 - ms) * (1.0 - prod)
                            : (1.0 - fs) * prod + ms * (1.0 - prod);
  return std::log(std::max(Likelihood::kProbFloor, prob));
}

double ref_log_likelihood(const ReferenceData& ref, const std::vector<double>& p,
                          const NoiseModel& noise) {
  double total = 0.0;
  for (std::size_t j = 0; j < ref.paths.size(); ++j) {
    double prod = 1.0;
    for (std::size_t node : ref.paths[j]) prod *= clamp_q(p[node]);
    total += ref_obs_log_lik(prod, ref.labels[j], noise);
  }
  return total;
}

std::vector<double> ref_gradient(const ReferenceData& ref,
                                 const std::vector<double>& p,
                                 const NoiseModel& noise) {
  std::vector<double> grad(p.size(), 0.0);
  const double fs = noise.false_signature;
  const double ms = noise.missed_signature;
  for (std::size_t j = 0; j < ref.paths.size(); ++j) {
    double prod = 1.0;
    for (std::size_t node : ref.paths[j]) prod *= clamp_q(p[node]);
    double c0, c1;
    if (ref.labels[j]) {
      c0 = 1.0 - ms;
      c1 = fs - (1.0 - ms);
    } else {
      c0 = ms;
      c1 = (1.0 - fs) - ms;
    }
    const double prob = std::max(Likelihood::kProbFloor, c0 + c1 * prod);
    for (std::size_t node : ref.paths[j])
      grad[node] -= c1 * (prod / clamp_q(p[node])) / prob;
  }
  return grad;
}

NoiseModel noisy() {
  NoiseModel noise;
  noise.false_signature = 0.06;
  noise.missed_signature = 0.09;
  return noise;
}

TEST(CsrEquivalence, LogLikelihoodMatchesReference) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const NoiseModel& noise : {NoiseModel{}, noisy()}) {
      // 90 ASes x 400 paths crosses several label-bitmap words.
      auto c = random_case(90, 400, seed);
      const Likelihood lik(c.data, noise);
      stats::Rng rng(seed * 31 + 7);
      for (int rep = 0; rep < 3; ++rep) {
        const auto p = random_p(lik.dim(), rng);
        const double expected = ref_log_likelihood(c.ref, p, noise);
        const double got = lik.log_likelihood(p);
        EXPECT_NEAR(got, expected, 1e-12 * std::max(1.0, std::abs(expected)))
            << "seed " << seed;
      }
    }
  }
}

TEST(CsrEquivalence, ProductsMatchReferenceExactly) {
  auto c = random_case(60, 200, 11);
  const Likelihood lik(c.data);
  stats::Rng rng(5);
  const auto p = random_p(lik.dim(), rng);
  const auto prods = lik.products(p);
  ASSERT_EQ(prods.size(), c.ref.paths.size());
  for (std::size_t j = 0; j < prods.size(); ++j) {
    double prod = 1.0;
    for (std::size_t node : c.ref.paths[j]) prod *= clamp_q(p[node]);
    // The cached-product path feeds the Metropolis accept decisions, so it
    // must be bit-identical to the straight in-order walk.
    EXPECT_DOUBLE_EQ(prods[j], prod) << "observation " << j;
  }
}

TEST(CsrEquivalence, GradientMatchesReference) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    for (const NoiseModel& noise : {NoiseModel{}, noisy()}) {
      auto c = random_case(70, 300, seed);
      const Likelihood lik(c.data, noise);
      stats::Rng rng(seed + 100);
      const auto p = random_p(lik.dim(), rng);
      const auto expected = ref_gradient(c.ref, p, noise);
      std::vector<double> got(lik.dim());
      lik.gradient(p, got);
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], expected[i],
                    1e-12 * std::max(1.0, std::abs(expected[i])))
            << "coordinate " << i;
    }
  }
}

TEST(CsrEquivalence, GradientMatchesCentralFiniteDifferences) {
  auto c = random_case(25, 120, 21);
  const Likelihood lik(c.data, noisy());
  stats::Rng rng(42);
  // Keep p away from the boundaries so the difference quotient is clean.
  std::vector<double> p(lik.dim());
  for (double& x : p) x = 0.1 + 0.8 * rng.uniform();

  std::vector<double> grad(lik.dim());
  lik.gradient(p, grad);
  const double h = 1e-6;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::vector<double> plus = p, minus = p;
    plus[i] += h;
    minus[i] -= h;
    const double fd =
        (lik.log_likelihood(plus) - lik.log_likelihood(minus)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-4 * std::max(1.0, std::abs(fd)))
        << "coordinate " << i;
  }
}

TEST(CsrEquivalence, LogLikelihoodFiniteAtBoundaries) {
  auto c = random_case(30, 100, 33);
  const Likelihood lik(c.data);
  const std::vector<double> ones(lik.dim(), 1.0);
  const std::vector<double> zeros(lik.dim(), 0.0);
  EXPECT_TRUE(std::isfinite(lik.log_likelihood(ones)));
  EXPECT_TRUE(std::isfinite(lik.log_likelihood(zeros)));
}

}  // namespace
}  // namespace because::core
