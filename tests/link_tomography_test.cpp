#include <gtest/gtest.h>

#include "core/metropolis.hpp"
#include "experiment/link_tomography.hpp"
#include "stats/hdpi.hpp"

namespace because::experiment {
namespace {

labeling::LabeledPath make_labeled(topology::AsPath path, bool rfd,
                                   std::uint32_t prefix_id = 1) {
  labeling::LabeledPath p;
  p.prefix = bgp::Prefix{prefix_id, 24};
  p.path = std::move(path);
  p.rfd = rfd;
  return p;
}

TEST(LinkTable, InternIsOrderInsensitive) {
  LinkTable table;
  const auto id1 = table.intern(10, 20);
  const auto id2 = table.intern(20, 10);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.link(id1), (Link{10, 20}));
}

TEST(LinkTable, DistinctLinksGetDistinctIds) {
  LinkTable table;
  EXPECT_NE(table.intern(10, 20), table.intern(10, 30));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_THROW(table.link(99), std::out_of_range);
  EXPECT_THROW(table.intern(5, 5), std::invalid_argument);
}

TEST(LinkTomography, BuildsLinkObservations) {
  const std::vector<labeling::LabeledPath> paths{
      make_labeled({100, 50, 10}, true),
      make_labeled({100, 60, 10}, false),
  };
  const auto lt = build_link_tomography(paths);
  EXPECT_EQ(lt.dataset.path_count(), 2u);
  // Links: (100,50), (50,10), (100,60), (60,10).
  EXPECT_EQ(lt.table.size(), 4u);
  EXPECT_EQ(lt.dataset.as_count(), 4u);
}

TEST(LinkTomography, ExcludesSiteLinks) {
  const std::vector<labeling::LabeledPath> paths{
      make_labeled({100, 50, 900}, true),
  };
  const auto lt = build_link_tomography(paths, {900});
  EXPECT_EQ(lt.table.size(), 1u);  // only (100, 50); (50, 900) dropped
}

TEST(LinkTomography, HeterogeneousDamperSeparatesPerLink) {
  // AS 701 damps only the session towards 3356, not towards 2497. At the
  // AS level this is contradictory; at the link level the (701, 3356) link
  // damps consistently and (701, 2497) is consistently clean.
  std::vector<labeling::LabeledPath> paths;
  std::uint32_t prefix = 1;
  for (int i = 0; i < 12; ++i) {
    paths.push_back(make_labeled({701, 2497, 900}, false, prefix++));
    paths.push_back(make_labeled({701, 3356, 900}, true, prefix++));
    paths.push_back(make_labeled({3356, 900}, false, prefix++));
  }
  const auto lt = build_link_tomography(paths, {900});
  const core::Likelihood lik(lt.dataset);
  core::MetropolisConfig config;
  config.samples = 800;
  config.burn_in = 400;
  const auto chain = core::run_metropolis(lik, core::Prior::uniform(), config);

  LinkTable table = lt.table;  // intern is idempotent for existing links
  const auto damped_link = table.intern(701, 3356);
  const auto clean_link = table.intern(701, 2497);
  EXPECT_GT(chain.mean(*lt.dataset.index_of(damped_link)), 0.7);
  EXPECT_LT(chain.mean(*lt.dataset.index_of(clean_link)), 0.3);
}

TEST(LinkTomography, SparsityShowsAsWideMarginals) {
  // The paper's caveat: per-link data is sparser than per-AS data. A link
  // seen on a single path stays near the prior.
  std::vector<labeling::LabeledPath> paths{
      make_labeled({100, 50, 10}, true, 1),
  };
  const auto lt = build_link_tomography(paths);
  const core::Likelihood lik(lt.dataset);
  core::MetropolisConfig config;
  config.samples = 600;
  config.burn_in = 200;
  const auto chain = core::run_metropolis(lik, core::Prior::uniform(), config);
  for (std::size_t i = 0; i < lt.dataset.as_count(); ++i) {
    const auto marginal = chain.marginal(i);
    const auto interval = stats::hdpi(marginal, 0.95);
    EXPECT_GT(interval.width(), 0.5);  // no link pins down
  }
}

}  // namespace
}  // namespace because::experiment
