// SIMD kernel dispatch: bit-identity of every vector level against the
// scalar reference on randomized CSR datasets, batched multi-target
// equivalence, multichain digest equivalence across dispatch levels, and
// dual-averaging HMC warmup.
//
// "Bit-identical" here is literal: comparisons use exact double equality
// (EXPECT_EQ), not EXPECT_NEAR. The kernels earn this by lane-mapping whole
// paths and reproducing the scalar association per lane — see
// core/kernels/kernels.hpp for the contract these tests pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/batched_likelihood.hpp"
#include "core/hmc.hpp"
#include "core/kernels/dispatch.hpp"
#include "core/likelihood.hpp"
#include "core/multichain.hpp"
#include "core/prior.hpp"
#include "stats/rng.hpp"
#include "util/thread_pool.hpp"

namespace because::core {
namespace {

namespace kernels = because::core::kernels;

/// Restore the detected dispatch level when a test scope ends, so a failing
/// EXPECT cannot leak a forced level into later tests.
struct LevelGuard {
  LevelGuard() : saved(kernels::active_level()) {}
  ~LevelGuard() { kernels::force_level(saved); }
  kernels::Level saved;
};

std::vector<kernels::Level> supported_levels() {
  std::vector<kernels::Level> levels = {kernels::Level::kScalar};
  if (kernels::supported(kernels::Level::kAvx2))
    levels.push_back(kernels::Level::kAvx2);
  if (kernels::supported(kernels::Level::kAvx512))
    levels.push_back(kernels::Level::kAvx512);
  return levels;
}

labeling::PathDataset random_dataset(std::size_t ases, std::size_t paths,
                                     std::uint64_t seed) {
  stats::Rng rng(seed);
  labeling::PathDataset data;
  for (std::size_t j = 0; j < paths; ++j) {
    const std::size_t len = 1 + rng.index(6);
    topology::AsPath path;
    for (std::size_t k = 0; k < len; ++k)
      path.push_back(static_cast<topology::AsId>(100 + rng.index(ases)));
    data.add_path(path, rng.bernoulli(0.4));
  }
  return data;
}

std::vector<double> random_p(std::size_t dim, stats::Rng& rng) {
  std::vector<double> p(dim);
  for (double& x : p) x = rng.uniform();
  return p;
}

NoiseModel noisy() {
  NoiseModel noise;
  noise.false_signature = 0.06;
  noise.missed_signature = 0.09;
  return noise;
}

// ------------------------------------------------------------- dispatch

TEST(KernelDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(kernels::supported(kernels::Level::kScalar));
  LevelGuard guard;
  EXPECT_TRUE(kernels::force_level(kernels::Level::kScalar));
  EXPECT_EQ(kernels::active_level(), kernels::Level::kScalar);
}

TEST(KernelDispatch, ForceLevelRejectsUnsupported) {
  LevelGuard guard;
  for (kernels::Level level :
       {kernels::Level::kAvx2, kernels::Level::kAvx512}) {
    if (kernels::supported(level)) {
      EXPECT_TRUE(kernels::force_level(level));
      EXPECT_EQ(kernels::active_level(), level);
    } else {
      EXPECT_FALSE(kernels::force_level(level));
      EXPECT_NE(kernels::active_level(), level);
    }
  }
}

TEST(KernelDispatch, LevelNames) {
  EXPECT_STREQ(kernels::level_name(kernels::Level::kScalar), "scalar");
  EXPECT_STREQ(kernels::level_name(kernels::Level::kAvx2), "avx2");
  EXPECT_STREQ(kernels::level_name(kernels::Level::kAvx512), "avx512");
}

// --------------------------------------------- scalar/vector bit-identity

// Path counts straddle the lane-block boundaries (multiples of 4 and 8,
// one off either way, tiny datasets with no full block at all).
constexpr std::size_t kPathCounts[] = {0, 1, 3, 4, 5, 8, 17, 64, 127, 333};

TEST(KernelEquivalence, LogLikelihoodBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const NoiseModel& noise : {NoiseModel{}, noisy()}) {
      for (std::size_t paths : kPathCounts) {
        if (paths == 0) continue;  // Likelihood needs a non-empty dataset
        const auto data = random_dataset(40, paths, seed);
        const Likelihood lik(data, noise);
        stats::Rng rng(seed * 97 + paths);
        const auto p = random_p(lik.dim(), rng);
        ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
        const double expected = lik.log_likelihood(p);
        for (kernels::Level level : supported_levels()) {
          ASSERT_TRUE(kernels::force_level(level));
          EXPECT_EQ(lik.log_likelihood(p), expected)
              << kernels::level_name(level) << " seed " << seed << " paths "
              << paths;
        }
      }
    }
  }
}

TEST(KernelEquivalence, GradientBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (std::uint64_t seed : {5u, 6u}) {
    for (const NoiseModel& noise : {NoiseModel{}, noisy()}) {
      for (std::size_t paths : kPathCounts) {
        if (paths == 0) continue;
        const auto data = random_dataset(40, paths, seed);
        const Likelihood lik(data, noise);
        stats::Rng rng(seed * 131 + paths);
        const auto p = random_p(lik.dim(), rng);
        ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
        std::vector<double> expected(lik.dim());
        lik.gradient(p, expected);
        std::vector<double> got(lik.dim());
        for (kernels::Level level : supported_levels()) {
          ASSERT_TRUE(kernels::force_level(level));
          lik.gradient(p, got);
          for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], expected[i])
                << kernels::level_name(level) << " coordinate " << i
                << " seed " << seed << " paths " << paths;
        }
      }
    }
  }
}

TEST(KernelEquivalence, ProductsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (std::size_t paths : kPathCounts) {
    if (paths == 0) continue;
    const auto data = random_dataset(30, paths, 17);
    const Likelihood lik(data);
    stats::Rng rng(paths + 3);
    const auto p = random_p(lik.dim(), rng);
    ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
    const auto expected = lik.products(p);
    for (kernels::Level level : supported_levels()) {
      ASSERT_TRUE(kernels::force_level(level));
      const auto got = lik.products(p);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], expected[j])
            << kernels::level_name(level) << " observation " << j << " paths "
            << paths;
    }
  }
}

TEST(KernelEquivalence, ShardedGradientBitIdenticalAcrossLevels) {
  // A fixed shard count fixes the reduction order (that is the sharded
  // gradient's determinism contract — serial and sharded group the sums
  // differently, so they agree only to rounding). What the kernels must
  // guarantee: for a given shard count, every dispatch level produces the
  // same bits even though the shard boundaries are not lane-aligned (the
  // vector kernels fall back to the scalar edge kernels there).
  LevelGuard guard;
  util::ThreadPool pool(4);
  const auto data = random_dataset(50, 201, 23);
  const Likelihood lik(data, noisy());
  stats::Rng rng(77);
  const auto p = random_p(lik.dim(), rng);
  std::vector<double> serial(lik.dim());
  lik.gradient(p, serial);
  for (std::size_t shards : {2u, 3u, 7u}) {
    ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
    std::vector<double> expected(lik.dim());
    lik.gradient(p, expected, pool, shards);
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_NEAR(expected[i], serial[i],
                  1e-12 * std::max(1.0, std::abs(serial[i])))
          << "shards " << shards << " coordinate " << i;
    for (kernels::Level level : supported_levels()) {
      ASSERT_TRUE(kernels::force_level(level));
      std::vector<double> sharded(lik.dim());
      lik.gradient(p, sharded, pool, shards);
      for (std::size_t i = 0; i < sharded.size(); ++i)
        EXPECT_EQ(sharded[i], expected[i])
            << kernels::level_name(level) << " shards " << shards
            << " coordinate " << i;
    }
  }
}

// ------------------------------------------------------------- batched

std::vector<std::vector<std::uint8_t>> random_target_labels(
    std::size_t targets, std::size_t paths, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> labels(targets);
  for (auto& l : labels) {
    l.resize(paths);
    for (std::uint8_t& bit : l)
      bit = rng.bernoulli(0.4) ? std::uint8_t{1} : std::uint8_t{0};
  }
  return labels;
}

TEST(BatchedLikelihood, MatchesIndependentEvaluations) {
  // Batched and single-target paths use different product associations, so
  // agreement is to rounding, not to the bit (see DESIGN.md §5g).
  for (std::size_t targets : {1u, 5u, 8u, 11u}) {
    const auto data = random_dataset(35, 150, 29);
    const std::size_t paths = data.path_count();
    const auto labels = random_target_labels(targets, paths, 31);
    const NoiseModel noise = noisy();
    const BatchedLikelihood batched(data, labels, noise);
    ASSERT_EQ(batched.targets(), targets);
    const std::size_t dim = batched.dim();

    stats::Rng rng(41);
    std::vector<double> p(targets * dim);
    for (double& x : p) x = rng.uniform();
    std::vector<double> ll(targets);
    std::vector<double> grad(targets * dim);
    batched.log_likelihoods(p, ll);
    batched.gradients(p, grad);

    for (std::size_t k = 0; k < targets; ++k) {
      // An equivalent single-target dataset: same paths, target k's labels.
      labeling::PathDataset single;
      for (std::size_t j = 0; j < paths; ++j) {
        topology::AsPath path;
        for (std::uint32_t node : data.path_nodes(j))
          path.push_back(data.as_at(node));
        single.add_path(path, labels[k][j] != 0);
      }
      const Likelihood lik(single, noise);
      const std::span<const double> pk{p.data() + k * dim, dim};
      const double expected = lik.log_likelihood(pk);
      EXPECT_NEAR(ll[k], expected, 1e-9 * std::max(1.0, std::abs(expected)))
          << "target " << k;
      std::vector<double> expected_grad(dim);
      lik.gradient(pk, expected_grad);
      for (std::size_t i = 0; i < dim; ++i)
        EXPECT_NEAR(grad[k * dim + i], expected_grad[i],
                    1e-9 * std::max(1.0, std::abs(expected_grad[i])))
            << "target " << k << " coordinate " << i;
    }
  }
}

TEST(BatchedLikelihood, BitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (std::size_t targets : {3u, 8u, 13u}) {
    const auto data = random_dataset(45, 222, 53);
    const auto labels = random_target_labels(targets, data.path_count(), 59);
    const BatchedLikelihood batched(data, labels, noisy());
    const std::size_t dim = batched.dim();
    stats::Rng rng(61);
    std::vector<double> p(targets * dim);
    for (double& x : p) x = rng.uniform();

    ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
    std::vector<double> ll_expected(targets), grad_expected(targets * dim);
    batched.log_likelihoods(p, ll_expected);
    batched.gradients(p, grad_expected);

    std::vector<double> ll(targets), grad(targets * dim);
    for (kernels::Level level : supported_levels()) {
      ASSERT_TRUE(kernels::force_level(level));
      batched.log_likelihoods(p, ll);
      batched.gradients(p, grad);
      for (std::size_t k = 0; k < targets; ++k)
        EXPECT_EQ(ll[k], ll_expected[k])
            << kernels::level_name(level) << " target " << k;
      for (std::size_t i = 0; i < grad.size(); ++i)
        EXPECT_EQ(grad[i], grad_expected[i])
            << kernels::level_name(level) << " entry " << i;
    }
  }
}

TEST(BatchedLikelihood, FusedPosteriorsMatchSeparateCalls) {
  // posteriors() shares one CSR walk between the probability fold and the
  // gradient scatter; per lane the arithmetic sequence is identical to the
  // separate calls, so agreement is to the bit — at every dispatch level.
  LevelGuard guard;
  for (std::size_t targets : {1u, 8u, 13u}) {
    const auto data = random_dataset(45, 222, 53);
    const auto labels = random_target_labels(targets, data.path_count(), 59);
    const BatchedLikelihood batched(data, labels, noisy());
    const std::size_t dim = batched.dim();
    stats::Rng rng(61);
    std::vector<double> p(targets * dim);
    for (double& x : p) x = rng.uniform();

    std::vector<double> ll_expected(targets), grad_expected(targets * dim);
    std::vector<double> ll(targets), grad(targets * dim);
    for (kernels::Level level : supported_levels()) {
      ASSERT_TRUE(kernels::force_level(level));
      batched.log_likelihoods(p, ll_expected);
      batched.gradients(p, grad_expected);
      batched.posteriors(p, ll, grad);
      for (std::size_t k = 0; k < targets; ++k)
        EXPECT_EQ(ll[k], ll_expected[k])
            << kernels::level_name(level) << " target " << k;
      for (std::size_t i = 0; i < grad.size(); ++i)
        EXPECT_EQ(grad[i], grad_expected[i])
            << kernels::level_name(level) << " entry " << i;
    }
  }
}

TEST(BatchedLikelihood, Validation) {
  const auto data = random_dataset(10, 20, 3);
  EXPECT_THROW(BatchedLikelihood(data, {}), std::invalid_argument);
  EXPECT_THROW(
      BatchedLikelihood(data, {std::vector<std::uint8_t>(5, 0)}),
      std::invalid_argument);
  const BatchedLikelihood ok(
      data, {std::vector<std::uint8_t>(data.path_count(), 1)});
  std::vector<double> p(ok.dim(), 0.5), out(2);
  EXPECT_THROW(ok.log_likelihoods(p, out), std::invalid_argument);
}

// -------------------------------------- multichain digests across levels

/// Planted scenario shared with mcmc_test: AS 10 damps, 20/30/40 do not.
labeling::PathDataset planted_dataset(int copies) {
  labeling::PathDataset d;
  for (int i = 0; i < copies; ++i) {
    d.add_path({10, 20}, true);
    d.add_path({10, 30}, true);
    d.add_path({10, 20, 30}, true);
    d.add_path({20, 30}, false);
    d.add_path({30, 40}, false);
    d.add_path({20, 40}, false);
  }
  return d;
}

TEST(KernelEquivalence, MultichainDigestIdenticalAcrossLevels) {
  // The whole point of the bit-identity contract: a full multi-chain run
  // (chains on a pool, R-hat, pooled samples) produces the same digest at
  // every dispatch level and every pool size.
  LevelGuard guard;
  const auto data = planted_dataset(6);
  const Likelihood lik(data);
  const Prior prior = Prior::beta(1.0, 3.0);
  HmcConfig config;
  config.samples = 60;
  config.burn_in = 30;
  config.leapfrog_steps = 8;
  config.seed = 9;

  ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
  util::ThreadPool pool1(1);
  const MultiChainResult expected =
      run_hmc_chains(lik, prior, config, 3, &pool1);

  for (kernels::Level level : supported_levels()) {
    ASSERT_TRUE(kernels::force_level(level));
    for (std::size_t pool_size : {1u, 4u}) {
      util::ThreadPool pool(pool_size);
      const MultiChainResult got =
          run_hmc_chains(lik, prior, config, 3, &pool);
      ASSERT_EQ(got.pooled.size(), expected.pooled.size())
          << kernels::level_name(level);
      for (std::size_t t = 0; t < got.pooled.size(); ++t) {
        const auto a = got.pooled.sample(t);
        const auto b = expected.pooled.sample(t);
        for (std::size_t i = 0; i < a.size(); ++i)
          EXPECT_EQ(a[i], b[i])
              << kernels::level_name(level) << " pool " << pool_size
              << " sample " << t << " coordinate " << i;
      }
      for (std::size_t i = 0; i < got.rhat.size(); ++i)
        EXPECT_EQ(got.rhat[i], expected.rhat[i])
            << kernels::level_name(level) << " pool " << pool_size;
    }
  }
}

TEST(KernelEquivalence, MetropolisDigestIdenticalAcrossLevels) {
  LevelGuard guard;
  const auto data = planted_dataset(6);
  const Likelihood lik(data);
  const Prior prior = Prior::beta(1.0, 3.0);
  MetropolisConfig config;
  config.samples = 150;
  config.burn_in = 50;
  config.seed = 13;

  ASSERT_TRUE(kernels::force_level(kernels::Level::kScalar));
  util::ThreadPool pool1(2);
  const MultiChainResult expected =
      run_metropolis_chains(lik, prior, config, 3, &pool1);

  for (kernels::Level level : supported_levels()) {
    ASSERT_TRUE(kernels::force_level(level));
    util::ThreadPool pool(4);
    const MultiChainResult got =
        run_metropolis_chains(lik, prior, config, 3, &pool);
    ASSERT_EQ(got.pooled.size(), expected.pooled.size());
    for (std::size_t t = 0; t < got.pooled.size(); ++t) {
      const auto a = got.pooled.sample(t);
      const auto b = expected.pooled.sample(t);
      for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << kernels::level_name(level) << " sample " << t;
    }
  }
}

// ------------------------------------------------------- dual averaging

TEST(DualAveraging, ReachesTargetAcceptance) {
  const auto data = planted_dataset(8);
  const Likelihood lik(data);
  const Prior prior = Prior::beta(1.0, 3.0);
  HmcConfig config;
  config.samples = 300;
  config.burn_in = 600;
  config.leapfrog_steps = 10;
  // Deliberately terrible starting step size: adaptation must rescue it.
  config.step_size = 0.5;
  config.adapt_step_size = true;
  config.seed = 3;

  const Chain chain = run_hmc(lik, prior, config);
  EXPECT_GT(chain.adapted_step_size, 0.0);
  EXPECT_NE(chain.adapted_step_size, config.step_size);
  // Mean acceptance over the whole run should bracket the 0.8 target.
  EXPECT_GE(chain.acceptance_rate, 0.7);
  EXPECT_LE(chain.acceptance_rate, 0.9);
  // And so should the post-warmup acceptance the frozen step delivers.
  EXPECT_GE(chain.kept_acceptance_rate, 0.7);
  EXPECT_LE(chain.kept_acceptance_rate, 0.9);
}

TEST(DualAveraging, FrozenStepSizeIsDeterministic) {
  const auto data = planted_dataset(5);
  const Likelihood lik(data);
  const Prior prior = Prior::beta(1.0, 3.0);
  HmcConfig config;
  config.samples = 40;
  config.burn_in = 60;
  config.adapt_step_size = true;
  config.seed = 11;

  const Chain a = run_hmc(lik, prior, config);
  const Chain b = run_hmc(lik, prior, config);
  EXPECT_EQ(a.adapted_step_size, b.adapted_step_size);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t)
    for (std::size_t i = 0; i < a.dim(); ++i)
      EXPECT_EQ(a.sample(t)[i], b.sample(t)[i]) << "sample " << t;
}

TEST(DualAveraging, OffByDefaultPreservesFixedStep) {
  const auto data = planted_dataset(5);
  const Likelihood lik(data);
  const Prior prior = Prior::beta(1.0, 3.0);
  HmcConfig config;
  config.samples = 20;
  config.burn_in = 10;
  config.seed = 7;
  EXPECT_FALSE(config.adapt_step_size);
  const Chain chain = run_hmc(lik, prior, config);
  EXPECT_EQ(chain.adapted_step_size, config.step_size);
}

TEST(DualAveraging, ValidatesTargetAccept) {
  HmcConfig config;
  config.adapt_step_size = true;
  config.target_accept = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.target_accept = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.target_accept = 0.8;
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace because::core
