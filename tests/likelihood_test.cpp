#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/likelihood.hpp"

namespace because::core {
namespace {

labeling::PathDataset two_path_dataset() {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);    // shows property
  d.add_path({20, 30}, false);   // clean
  return d;
}

TEST(Likelihood, DimMatchesDataset) {
  const auto d = two_path_dataset();
  const Likelihood lik(d);
  EXPECT_EQ(lik.dim(), 3u);
}

TEST(Likelihood, HandComputedValue) {
  const auto d = two_path_dataset();
  const Likelihood lik(d);
  // p = (p10, p20, p30) in interning order 10,20,30.
  const std::vector<double> p{0.5, 0.2, 0.1};
  // Path {10,20} shows: log(1 - 0.5*0.8) = log(0.6)
  // Path {20,30} clean: log(0.8*0.9) = log(0.72)
  const double expected = std::log(1.0 - 0.5 * 0.8) + std::log(0.8 * 0.9);
  EXPECT_NEAR(lik.log_likelihood(p), expected, 1e-12);
}

TEST(Likelihood, ProductsMatchDefinition) {
  const auto d = two_path_dataset();
  const Likelihood lik(d);
  const std::vector<double> p{0.5, 0.2, 0.1};
  const auto prods = lik.products(p);
  ASSERT_EQ(prods.size(), 2u);
  EXPECT_NEAR(prods[0], 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(prods[1], 0.8 * 0.9, 1e-12);
}

TEST(Likelihood, ObservationLogLik) {
  const auto d = two_path_dataset();
  const Likelihood lik(d);
  EXPECT_NEAR(lik.observation_log_lik(0.3, false), std::log(0.3), 1e-12);
  EXPECT_NEAR(lik.observation_log_lik(0.3, true), std::log(0.7), 1e-12);
  // Floors keep logs finite at the boundary.
  EXPECT_TRUE(std::isfinite(lik.observation_log_lik(0.0, false)));
  EXPECT_TRUE(std::isfinite(lik.observation_log_lik(1.0, true)));
}

TEST(Likelihood, NoiseModelFlipsLabels) {
  const auto d = two_path_dataset();
  NoiseModel noise;
  noise.false_signature = 0.1;
  noise.missed_signature = 0.2;
  const Likelihood lik(d, noise);
  // shows: fs*prod + (1-ms)*(1-prod) = 0.1*0.4 + 0.8*0.6
  EXPECT_NEAR(lik.observation_log_lik(0.4, true),
              std::log(0.1 * 0.4 + 0.8 * 0.6), 1e-12);
  // clean: (1-fs)*prod + ms*(1-prod) = 0.9*0.4 + 0.2*0.6
  EXPECT_NEAR(lik.observation_log_lik(0.4, false),
              std::log(0.9 * 0.4 + 0.2 * 0.6), 1e-12);
  // A clean path with every q = 1 still shows with probability fs.
  EXPECT_NEAR(lik.observation_log_lik(1.0, true), std::log(0.1), 1e-12);
}

TEST(Likelihood, NoiseModelValidation) {
  const auto d = two_path_dataset();
  NoiseModel bad;
  bad.false_signature = 0.6;
  EXPECT_THROW(Likelihood(d, bad), std::invalid_argument);
  bad = NoiseModel{};
  bad.missed_signature = -0.1;
  EXPECT_THROW(Likelihood(d, bad), std::invalid_argument);
}

TEST(Likelihood, NoisyGradientMatchesFiniteDifferences) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({20, 30}, false);
  d.add_path({10, 30}, true);
  NoiseModel noise;
  noise.false_signature = 0.05;
  noise.missed_signature = 0.08;
  const Likelihood lik(d, noise);
  const std::vector<double> p{0.4, 0.25, 0.6};

  std::vector<double> grad(3);
  lik.gradient(p, grad);
  const double h = 1e-7;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::vector<double> plus = p, minus = p;
    plus[i] += h;
    minus[i] -= h;
    const double fd =
        (lik.log_likelihood(plus) - lik.log_likelihood(minus)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-4) << "coordinate " << i;
  }
}

TEST(Likelihood, CleanPathsPullTowardZero) {
  labeling::PathDataset d;
  d.add_path({10}, false);
  const Likelihood lik(d);
  EXPECT_GT(lik.log_likelihood(std::vector<double>{0.1}),
            lik.log_likelihood(std::vector<double>{0.9}));
}

TEST(Likelihood, PropertyPathsPullTowardOne) {
  labeling::PathDataset d;
  d.add_path({10}, true);
  const Likelihood lik(d);
  EXPECT_GT(lik.log_likelihood(std::vector<double>{0.9}),
            lik.log_likelihood(std::vector<double>{0.1}));
}

TEST(Likelihood, GradientMatchesFiniteDifferences) {
  labeling::PathDataset d;
  d.add_path({10, 20}, true);
  d.add_path({20, 30}, false);
  d.add_path({10, 30}, true);
  const Likelihood lik(d);
  const std::vector<double> p{0.4, 0.25, 0.6};

  std::vector<double> grad(3);
  lik.gradient(p, grad);

  const double h = 1e-7;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::vector<double> plus = p, minus = p;
    plus[i] += h;
    minus[i] -= h;
    const double fd =
        (lik.log_likelihood(plus) - lik.log_likelihood(minus)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-4) << "coordinate " << i;
  }
}

TEST(Likelihood, GradientSignConventions) {
  labeling::PathDataset d;
  d.add_path({10}, true);
  d.add_path({20}, false);
  const Likelihood lik(d);
  std::vector<double> grad(2);
  lik.gradient(std::vector<double>{0.5, 0.5}, grad);
  EXPECT_GT(grad[0], 0.0);  // increase p on property-showing path
  EXPECT_LT(grad[1], 0.0);  // decrease p on clean path
}

TEST(Likelihood, DimMismatchThrows) {
  const auto d = two_path_dataset();
  const Likelihood lik(d);
  std::vector<double> wrong(2, 0.5);
  EXPECT_THROW(lik.log_likelihood(wrong), std::invalid_argument);
  std::vector<double> grad(2);
  std::vector<double> p(3, 0.5);
  EXPECT_THROW(lik.gradient(p, grad), std::invalid_argument);
}

TEST(Likelihood, MleOfSingleAsMatchesFraction) {
  // One AS on 3 property paths and 1 clean path: the MLE of p is 0.75 and
  // the log-likelihood must peak there.
  labeling::PathDataset d;
  d.add_path({10}, true);
  d.add_path({10}, true);
  d.add_path({10}, true);
  d.add_path({10}, false);
  const Likelihood lik(d);
  const double at_mle = lik.log_likelihood(std::vector<double>{0.75});
  for (double p : {0.3, 0.5, 0.6, 0.9}) {
    EXPECT_LT(lik.log_likelihood(std::vector<double>{p}), at_mle);
  }
}

}  // namespace
}  // namespace because::core
